/**
 * @file
 * Inference request lifecycle state shared by the scheduler, memory
 * back-ends and metrics.
 */

#ifndef VATTN_SERVING_REQUEST_HH
#define VATTN_SERVING_REQUEST_HH

#include <algorithm>
#include <functional>
#include <vector>

#include "common/prefix_hash.hh"
#include "common/types.hh"

namespace vattn::serving
{

struct Request;

/**
 * Per-token streaming hooks for the online serving path. The struct
 * is owned by the submitter (it outlives the request) and attached to
 * a Request as a non-owning pointer, so installing callbacks adds no
 * per-request heap traffic and the engine hot loop stays
 * allocation-free: invoking a pre-built std::function allocates
 * nothing.
 *
 * on_finish fires at every terminal transition — finished, dropped
 * and shed alike; the request's state says which.
 */
struct StreamCallbacks
{
    std::function<void(const Request &)> on_first_token;
    std::function<void(const Request &)> on_token;
    std::function<void(const Request &)> on_finish;
};

/** One inference request flowing through the engine. */
struct Request
{
    enum class State : u8
    {
        kPending,  ///< not yet arrived (online traces)
        kWaiting,  ///< queued, no KV allocated
        kRunning,  ///< scheduled, holds a backend slot
        kSwapped,  ///< preempted to host memory; still holds its slot
        kFinished,
        /** Permanently rejected: the request's KV demand can never fit
         *  the budget (recorded in RunReport::dropped_requests, never
         *  in the latency percentiles). */
        kDropped,
        /** Rejected at admission because its TTFT deadline was already
         *  impossible to meet (SLO-aware shedding; counted in
         *  RunReport::shed_requests, separately from drops). */
        kShed,
        /** Moved to another replica (cross-replica migration). The
         *  donor keeps this husk only as a tombstone; the adopting
         *  engine owns the live copy. */
        kMigrated,
    };

    u64 id = 0;
    i64 prompt_tokens = 0;
    i64 max_new_tokens = 1;
    TimeNs arrival_ns = 0;
    /**
     * Prompt token ids (prefix caching needs real content; synthetic
     * length-only traces leave this empty and never hit the cache).
     * When non-empty, size() == prompt_tokens.
     */
    std::vector<i32> token_ids;

    // ---- Service-level objectives (0 = no deadline) -----------------
    /** Max acceptable time-to-first-token, relative to arrival. */
    TimeNs ttft_deadline_ns = 0;
    /** Max acceptable gap between consecutive output tokens. */
    TimeNs tbt_deadline_ns = 0;
    /** Streaming hooks (non-owning; null for offline runs). */
    const StreamCallbacks *stream = nullptr;

    // Mutable runtime state.
    State state = State::kPending;
    /** Prompt tokens whose KV has been computed (chunked prefill may
     *  spread the prompt over several iterations). Prefix-cache hits
     *  start this at the matched token count. */
    i64 prefilled_tokens = 0;
    i64 generated = 0;
    int slot = -1;
    u64 preemptions = 0;
    /** Latest prefix-cache match estimate for a waiting request
     *  (refreshed by the engine's admission check; 0 = no match or
     *  caching disabled). The batch composer discounts it when sizing
     *  prefill chunks; the real reuse is decided at slot allocation. */
    i64 prefix_hint = 0;

    // Timestamps for metrics.
    TimeNs first_scheduled_ns = 0;
    TimeNs prefill_done_ns = 0;
    /** Emission time of the newest output token (TBT bookkeeping);
     *  0 until the first token of the current computation epoch. */
    TimeNs last_token_ns = 0;
    /**
     * Emission time of the newest *user-visible* token. Unlike
     * last_token_ns this survives preemption epochs (swap-outs reset
     * last_token_ns so the percentile samples skip the stall, the
     * historical accounting), so SLO checking sees the gaps a client
     * would actually observe. 0 until the first token ever.
     */
    TimeNs last_emit_ns = 0;
    TimeNs finish_ns = 0;
    /** Deadline verdicts, latched at emission time (SLO fields). */
    bool ttft_violated = false;
    bool tbt_violated = false;

    /** Carries a TTFT or TBT deadline (participates in goodput). */
    bool hasSlo() const
    {
        return ttft_deadline_ns > 0 || tbt_deadline_ns > 0;
    }

    /** Tokens currently in the KV cache. */
    i64 contextLen() const { return prefilled_tokens + generated; }
    /** Final context length when the request completes. */
    i64 totalLen() const { return prompt_tokens + max_new_tokens; }

    /** The whole prompt is in the KV cache; decoding may proceed. */
    bool prefillComplete() const
    {
        return prefilled_tokens >= prompt_tokens;
    }

    bool hasTokenIds() const { return !token_ids.empty(); }

    /** Non-owning hash key over the prompt token ids. The attached
     *  memo makes repeated admission checks O(1) after the first
     *  full hashing pass (token ids never change). */
    PrefixKey
    prefixKey() const
    {
        return PrefixKey{token_ids.data(),
                         static_cast<i64>(token_ids.size()),
                         &prefix_hash_cache};
    }

    /** chunkHashes memo (content derived from token_ids). */
    mutable PrefixHashCache prefix_hash_cache;

    /**
     * Prompt tokens still to compute: actual prefill progress for
     * running requests, the prefix-cache hint for waiting ones. This
     * is what admission and chunk sizing budget against.
     */
    i64
    remainingPromptTokens() const
    {
        const i64 done = std::max(prefilled_tokens, prefix_hint);
        return std::max<i64>(0, prompt_tokens - done);
    }

    bool
    done() const
    {
        return generated >= max_new_tokens;
    }

    /** Drop all computed state (preemption with recomputation, or a
     *  queue drop): the request restarts from prompt token 0. */
    void
    resetComputedState()
    {
        prefilled_tokens = 0;
        generated = 0;
        slot = -1;
        last_token_ns = 0;
        prefix_hint = 0;
    }
};

} // namespace vattn::serving

#endif // VATTN_SERVING_REQUEST_HH
