/**
 * @file
 * Inference request lifecycle state shared by the scheduler, memory
 * back-ends and metrics.
 */

#ifndef VATTN_SERVING_REQUEST_HH
#define VATTN_SERVING_REQUEST_HH

#include "common/types.hh"

namespace vattn::serving
{

/** One inference request flowing through the engine. */
struct Request
{
    enum class State : u8
    {
        kPending,  ///< not yet arrived (online traces)
        kWaiting,  ///< queued, no KV allocated
        kRunning,  ///< scheduled, holds a backend slot
        kFinished,
    };

    u64 id = 0;
    i64 prompt_tokens = 0;
    i64 max_new_tokens = 1;
    TimeNs arrival_ns = 0;

    // Mutable runtime state.
    State state = State::kPending;
    /** Prompt tokens whose KV has been computed (chunked prefill may
     *  spread the prompt over several iterations). */
    i64 prefilled_tokens = 0;
    i64 generated = 0;
    int slot = -1;
    u64 preemptions = 0;

    // Timestamps for metrics.
    TimeNs first_scheduled_ns = 0;
    TimeNs prefill_done_ns = 0;
    /** Emission time of the newest output token (TBT bookkeeping);
     *  0 until the first token of the current computation epoch. */
    TimeNs last_token_ns = 0;
    TimeNs finish_ns = 0;

    /** Tokens currently in the KV cache. */
    i64 contextLen() const { return prefilled_tokens + generated; }
    /** Final context length when the request completes. */
    i64 totalLen() const { return prompt_tokens + max_new_tokens; }

    /** The whole prompt is in the KV cache; decoding may proceed. */
    bool prefillComplete() const
    {
        return prefilled_tokens >= prompt_tokens;
    }

    bool
    done() const
    {
        return generated >= max_new_tokens;
    }

    /** Drop all computed state (preemption with recomputation, or a
     *  queue drop): the request restarts from prompt token 0. */
    void
    resetComputedState()
    {
        prefilled_tokens = 0;
        generated = 0;
        slot = -1;
        last_token_ns = 0;
    }
};

} // namespace vattn::serving

#endif // VATTN_SERVING_REQUEST_HH
