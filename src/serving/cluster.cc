#include "serving/cluster.hh"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>

#include "common/logging.hh"
#include "sim/event_queue.hh"

namespace vattn::serving
{

const char *
toString(ClusterExecution mode)
{
    switch (mode) {
      case ClusterExecution::kAuto: return "auto";
      case ClusterExecution::kThreads: return "threads";
      case ClusterExecution::kEventLoop: return "event_loop";
    }
    return "?";
}

const char *
toString(RoutingMode mode)
{
    switch (mode) {
      case RoutingMode::kStatic: return "static";
      case RoutingMode::kLive: return "live";
    }
    return "?";
}

namespace
{

/** max/mean of a non-negative series; 0 when the series is all-zero. */
double
maxOverMean(const std::vector<double> &xs)
{
    double sum = 0;
    double max = 0;
    for (double x : xs) {
        sum += x;
        max = std::max(max, x);
    }
    if (sum <= 0) {
        return 0.0;
    }
    return max / (sum / static_cast<double>(xs.size()));
}

/** Jain's fairness index: (sum x)^2 / (n * sum x^2), 1 when even. */
double
jainIndex(const std::vector<double> &xs)
{
    double sum = 0;
    double sum_sq = 0;
    for (double x : xs) {
        sum += x;
        sum_sq += x * x;
    }
    if (sum_sq <= 0) {
        return 1.0;
    }
    return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

} // namespace

ServingCluster::Config
ServingCluster::uniform(const EngineConfig &engine, int n,
                        RoutingPolicy policy)
{
    fatal_if(n <= 0, "cluster needs at least one replica");
    Config config;
    config.replicas.assign(static_cast<std::size_t>(n), engine);
    config.policy = policy;
    return config;
}

ServingCluster::ServingCluster(Config config)
    : config_(std::move(config))
{
    fatal_if(config_.replicas.empty(),
             "cluster needs at least one replica");
    engines_.reserve(config_.replicas.size());
    for (const EngineConfig &engine_config : config_.replicas) {
        // alloc-ok: cluster construction, once per replica
        engines_.push_back(std::make_unique<Engine>(engine_config));
    }
}

Router::Estimate
ServingCluster::estimateFor(const Request &request, int replica) const
{
    const Engine &engine = *engines_[static_cast<std::size_t>(replica)];
    const perf::KernelModel &kernel = engine.kernelModel();
    const EngineConfig &config = engine.config();
    // Occupancy estimate: prefill plus one batch-1 iteration per
    // output token at mid-generation context. Crude (ignores batching
    // and queueing) but deterministic and monotone in the request's
    // size, which is all the load model needs.
    TimeNs service =
        kernel.prefillAttention(config.backend, request.prompt_tokens) +
        kernel.prefillLinear(request.prompt_tokens) +
        kernel.commTime(request.prompt_tokens);
    const i64 mid_ctx =
        request.prompt_tokens + request.max_new_tokens / 2;
    service += static_cast<TimeNs>(request.max_new_tokens) *
               (kernel.decodeLinear(1) +
                kernel.decodeAttention(config.backend, mid_ctx) +
                kernel.commTime(1));
    const u64 kv_bytes =
        config.model.kvBytesPerTokenPerWorker(config.tp_degree) *
        static_cast<u64>(request.totalLen());
    return Router::Estimate{service, kv_bytes};
}

std::vector<int>
ServingCluster::routeTrace(const std::vector<Request> &trace) const
{
    std::vector<Router::Replica> replicas;
    replicas.reserve(engines_.size());
    for (const auto &engine : engines_) {
        replicas.push_back(
            Router::Replica{engine->backend().budgetBytes()});
    }
    Router router(config_.policy, std::move(replicas));

    // Route on the shared arrival timeline: time order, ties in trace
    // order (the same tie-break Engine::run uses for admission).
    std::vector<std::size_t> order(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        order[i] = i;
    }
    std::stable_sort(order.begin(), order.end(),
                     [&trace](std::size_t a, std::size_t b) {
                         return trace[a].arrival_ns < trace[b].arrival_ns;
                     });

    std::vector<int> assignment(trace.size(), 0);
    for (std::size_t i : order) {
        assignment[i] = router.route(
            trace[i].arrival_ns, [this, &trace, i](int replica) {
                return estimateFor(trace[i], replica);
            });
    }
    return assignment;
}

ServingCluster::Progress
ServingCluster::progress() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return progress_;
}

void
ServingCluster::recordReplicaDone(const RunReport &report)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++progress_.replicas_finished;
    progress_.requests_finished += report.num_requests;
    progress_.tokens_served += report.prompt_tokens +
                               report.decode_tokens;
}

ClusterExecution
ServingCluster::resolvedExecution() const
{
    if (config_.execution != ClusterExecution::kAuto) {
        return config_.execution;
    }
    // Past the core count, extra threads only add creation and
    // context-switch overhead on top of the same serialized work.
    const unsigned cores = std::thread::hardware_concurrency();
    return engines_.size() > static_cast<std::size_t>(
                                 cores > 0 ? cores : 1)
               ? ClusterExecution::kEventLoop
               : ClusterExecution::kThreads;
}

void
ServingCluster::runThreads(std::vector<std::vector<Request>> &shares,
                           ClusterReport &report)
{
    const std::size_t n = engines_.size();
    // Failures are rethrown in replica order so the outcome does not
    // depend on thread scheduling.
    std::vector<std::exception_ptr> errors(n);
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (std::size_t r = 0; r < n; ++r) {
        workers.emplace_back([this, r, &shares, &report, &errors] {
            try {
                report.replicas[r] =
                    engines_[r]->run(std::move(shares[r]));
                recordReplicaDone(report.replicas[r]);
            } catch (...) {
                errors[r] = std::current_exception();
            }
        });
    }
    for (std::thread &worker : workers) {
        worker.join();
    }
    for (const std::exception_ptr &error : errors) {
        if (error) {
            std::rethrow_exception(error);
        }
    }
}

void
ServingCluster::runEventLoop(
    std::vector<std::vector<Request>> &shares, ClusterReport &report)
{
    const std::size_t n = engines_.size();
    // Discrete-event coordination over the replicas' virtual clocks:
    // the heap always surfaces the replica with the earliest pending
    // event (arrival or runnable work). Replicas are independent, so
    // this ordering is about efficiency — each pop lets the replica
    // run ahead until the next other-replica event, batching many
    // scheduling steps per heap operation — not about correctness;
    // any interleaving yields the same per-replica reports.
    sim::EventQueue<std::size_t> ready;
    ready.reserve(n);
    for (std::size_t r = 0; r < n; ++r) {
        if (shares[r].empty()) {
            continue; // matches Engine::run on an empty trace
        }
        engines_[r]->beginRun(std::move(shares[r]));
        ready.push(engines_[r]->nextEventNs(), r);
    }
    while (!ready.empty()) {
        const std::size_t r = ready.pop();
        Engine &engine = *engines_[r];
        const TimeNs horizon =
            ready.empty() ? sim::kNoEventNs : ready.nextTimeNs();
        while (engine.runActive() && engine.nextEventNs() <= horizon) {
            engine.stepRun();
        }
        if (engine.runActive()) {
            ready.push(engine.nextEventNs(), r);
            continue;
        }
        report.replicas[r] = engine.endRun();
        recordReplicaDone(report.replicas[r]);
    }
}

ClusterReport
ServingCluster::run(std::vector<Request> trace)
{
    const std::size_t n = engines_.size();
    {
        // Thread-safe single-shot guard: engine virtual clocks carry
        // across runs, which would shift every arrival into the past
        // on a second trace — one cluster, one run.
        std::lock_guard<std::mutex> lock(mutex_);
        panic_if(run_started_,
                 "ServingCluster::run is single-shot; construct a "
                 "fresh cluster per trace");
        run_started_ = true;
    }
    ClusterReport report;
    report.replicas.resize(n);
    report.assigned.assign(n, 0);

    const std::vector<int> assignment = routeTrace(trace);
    std::vector<std::vector<Request>> shares(n);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        shares[static_cast<std::size_t>(assignment[i])].push_back(
            std::move(trace[i]));
    }
    for (std::size_t r = 0; r < n; ++r) {
        report.assigned[r] = static_cast<i64>(shares[r].size());
    }

    // Replicas are independent once routed, so both drivers produce
    // the identical per-replica reports (pinned by the equivalence
    // tests); the merge below is deterministic either way.
    if (resolvedExecution() == ClusterExecution::kEventLoop) {
        runEventLoop(shares, report);
    } else {
        runThreads(shares, report);
    }

    mergeReports(report);
    return report;
}

void
ServingCluster::mergeReports(ClusterReport &report)
{
    const std::size_t n = report.replicas.size();

    // ---- Merge, in replica order (deterministic) ---------------------
    RunReport &merged = report.merged;
    for (const RunReport &replica : report.replicas) {
        merged.num_requests += replica.num_requests;
        merged.prompt_tokens += replica.prompt_tokens;
        merged.decode_tokens += replica.decode_tokens;
        merged.decode_iterations += replica.decode_iterations;
        merged.prefill_iterations += replica.prefill_iterations;
        merged.mixed_iterations += replica.mixed_iterations;
        merged.preemptions += replica.preemptions;
        merged.swap_outs += replica.swap_outs;
        merged.swap_ins += replica.swap_ins;
        merged.swap_out_bytes += replica.swap_out_bytes;
        merged.swap_in_bytes += replica.swap_in_bytes;
        merged.swap_stall_ns += replica.swap_stall_ns;
        merged.dropped_requests += replica.dropped_requests;
        merged.slo_requests += replica.slo_requests;
        merged.slo_met_requests += replica.slo_met_requests;
        merged.slo_violations_ttft += replica.slo_violations_ttft;
        merged.slo_violations_tbt += replica.slo_violations_tbt;
        merged.shed_requests += replica.shed_requests;
        merged.migrations_in += replica.migrations_in;
        merged.migrations_out += replica.migrations_out;
        merged.prefix_lookups += replica.prefix_lookups;
        merged.prefix_hits += replica.prefix_hits;
        merged.prefill_tokens_saved += replica.prefill_tokens_saved;
        merged.prefix_aliased_bytes += replica.prefix_aliased_bytes;
        merged.prefix_copied_bytes += replica.prefix_copied_bytes;
        merged.peak_batch =
            std::max(merged.peak_batch, replica.peak_batch);
        merged.makespan_ns =
            std::max(merged.makespan_ns, replica.makespan_ns);
        merged.busy_ns += replica.busy_ns;
        merged.comm_ns += replica.comm_ns;
        for (double x : replica.latency_s.sorted()) {
            merged.latency_s.add(x);
        }
        for (double x : replica.ttft_s.sorted()) {
            merged.ttft_s.add(x);
        }
        for (double x : replica.tbt_s.sorted()) {
            merged.tbt_s.add(x);
        }
        for (double x : replica.normalized_latency_s.sorted()) {
            merged.normalized_latency_s.add(x);
        }
    }

    // Iteration records: k-way heap merge over the per-replica streams
    // (each already in start_ns order — one engine's clock only moves
    // forward). O(total log k) instead of re-sorting the concatenation;
    // ties order by replica index, reproducing byte-for-byte what the
    // historical concat + stable_sort by start_ns produced.
    struct Cursor
    {
        const std::vector<IterationRecord> *records = nullptr;
        std::size_t pos = 0;
        std::size_t replica = 0;
    };
    const auto after = [](const Cursor &a, const Cursor &b) {
        const TimeNs ta = (*a.records)[a.pos].start_ns;
        const TimeNs tb = (*b.records)[b.pos].start_ns;
        if (ta != tb) {
            return ta > tb;
        }
        return a.replica > b.replica;
    };
    std::vector<Cursor> heap;
    heap.reserve(n);
    std::size_t total_iterations = 0;
    for (std::size_t r = 0; r < n; ++r) {
        const auto &records = report.replicas[r].iterations;
        total_iterations += records.size();
        if (!records.empty()) {
            heap.push_back(Cursor{&records, 0, r});
        }
    }
    std::make_heap(heap.begin(), heap.end(), after);
    merged.iterations.reserve(total_iterations);
    while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), after);
        Cursor &cursor = heap.back();
        merged.iterations.push_back((*cursor.records)[cursor.pos]);
        if (++cursor.pos < cursor.records->size()) {
            std::push_heap(heap.begin(), heap.end(), after);
        } else {
            heap.pop_back();
        }
    }

    // ---- Cross-replica imbalance -------------------------------------
    std::vector<double> requests(n);
    std::vector<double> tokens(n);
    std::vector<double> busy(n);
    for (std::size_t r = 0; r < n; ++r) {
        const RunReport &replica = report.replicas[r];
        requests[r] = static_cast<double>(replica.num_requests);
        tokens[r] = static_cast<double>(replica.prompt_tokens +
                                        replica.decode_tokens);
        busy[r] = static_cast<double>(replica.busy_ns);
    }
    report.request_imbalance = maxOverMean(requests);
    report.token_imbalance = maxOverMean(tokens);
    report.busy_imbalance = maxOverMean(busy);
    report.jain_fairness = jainIndex(requests);
}

void
ServingCluster::advanceAllTo(TimeNs horizon_ns)
{
    const std::size_t n = engines_.size();
    const auto pump = [horizon_ns](Engine &engine) {
        while (engine.runActive() &&
               engine.nextEventNs() < horizon_ns) {
            engine.stepRun();
        }
    };
    // Replicas with no event before the horizon have nothing to do;
    // skipping them keeps the threads mode from spawning workers for
    // idle replicas on every submission.
    std::vector<std::size_t> pending;
    pending.reserve(n);
    for (std::size_t r = 0; r < n; ++r) {
        if (engines_[r]->runActive() &&
            engines_[r]->nextEventNs() < horizon_ns) {
            pending.push_back(r);
        }
    }
    if (pending.size() <= 1 ||
        resolvedExecution() != ClusterExecution::kThreads) {
        // Replicas are independent within the window, so sequential
        // order is irrelevant (the event-loop mode and the one-worker
        // degenerate case share this path).
        for (const std::size_t r : pending) {
            pump(*engines_[r]);
        }
        return;
    }
    std::vector<std::exception_ptr> errors(pending.size());
    std::vector<std::thread> workers;
    workers.reserve(pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
        workers.emplace_back([&, i] {
            try {
                pump(*engines_[pending[i]]);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    }
    for (std::thread &worker : workers) {
        worker.join();
    }
    for (const std::exception_ptr &error : errors) {
        if (error) {
            std::rethrow_exception(error);
        }
    }
}

void
ServingCluster::maybeMigrate()
{
    if (engines_.size() < 2) {
        return;
    }
    // Donor: the worst-loaded replica (saturation trumps score, then
    // higher score, then lower index — mirror image of routeLive's
    // receiver ordering, so both are pure functions of the
    // snapshots). Receiver: routeLive's pick among the others.
    std::vector<Router::LiveLoad> loads;
    loads.reserve(engines_.size());
    for (const auto &engine : engines_) {
        loads.push_back(engine->liveLoad());
    }
    std::size_t donor = 0;
    std::size_t receiver = 0;
    for (std::size_t r = 1; r < engines_.size(); ++r) {
        const bool worse =
            (loads[r].kv_saturated && !loads[donor].kv_saturated) ||
            (loads[r].kv_saturated == loads[donor].kv_saturated &&
             Router::liveScore(loads[r]) >
                 Router::liveScore(loads[donor]));
        if (worse) {
            donor = r;
        }
        const bool better =
            (loads[receiver].kv_saturated && !loads[r].kv_saturated) ||
            (loads[receiver].kv_saturated == loads[r].kv_saturated &&
             Router::liveScore(loads[r]) <
                 Router::liveScore(loads[receiver]));
        if (better) {
            receiver = r;
        }
    }
    if (donor == receiver || loads[donor].queued == 0) {
        return;
    }
    // A handoff only pays off when the receiver can actually start
    // the migrant: an unsaturated replica with an empty queue.
    // Migrating into another line just trades one wait for another
    // (plus a swap round-trip when KV moves with it).
    if (loads[receiver].kv_saturated || loads[receiver].queued > 0) {
        return;
    }
    // And only when the gap is worth it: the donor is saturated while
    // the receiver is not, or the scores differ by more than one
    // queued request's weight (hysteresis — without it near-balanced
    // replicas would trade the same request back and forth at
    // successive arrivals).
    const double gap = Router::liveScore(loads[donor]) -
                       Router::liveScore(loads[receiver]);
    const bool pressured =
        loads[donor].kv_saturated && !loads[receiver].kv_saturated;
    if (!pressured && gap <= 3.0) {
        return;
    }
    // Swapped requests first: moving one also moves its KV off the
    // donor's host tier (through the shared-host handover), which is
    // what relieves an overcommitted replica. Fall back to handing
    // off a queued request (pure bookkeeping, no KV anywhere).
    Engine &from = *engines_[donor];
    Engine &to = *engines_[receiver];
    if (!from.migrateSwappedTo(to)) {
        from.migrateQueuedTo(to);
    }
}

void
ServingCluster::start(const OnlineOptions &options)
{
    std::lock_guard<std::mutex> lock(mutex_);
    panic_if(run_started_,
             "ServingCluster::start: the cluster already served a "
             "trace or session (single-shot; construct a fresh one)");
    run_started_ = true;
    online_started_ = true;
    online_options_ = options;
    online_assigned_.assign(engines_.size(), 0);

    std::vector<Router::Replica> replicas;
    replicas.reserve(engines_.size());
    for (const auto &engine : engines_) {
        replicas.push_back(
            Router::Replica{engine->backend().budgetBytes()});
    }
    online_router_ = // alloc-ok: session start, once per cluster
        std::make_unique<Router>(config_.policy, std::move(replicas));
    for (const auto &engine : engines_) {
        engine->beginOnline(options.expected_requests);
    }
}

Status
ServingCluster::submit(Request request)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!online_started_) {
        return errorStatus(ErrorCode::kFailedPrecondition,
                           "submit before start(): no online session "
                           "is open");
    }
    if (online_shutdown_) {
        return errorStatus(ErrorCode::kFailedPrecondition,
                           "submit after shutdown(): the online "
                           "session is closed");
    }
    if (request.arrival_ns < online_last_arrival_ns_) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "online arrivals must be submitted in "
                           "time order");
    }
    online_last_arrival_ns_ = request.arrival_ns;

    // Bring every replica up to the arrival instant first: live
    // routing and migration must see the cluster as it stands *now*,
    // not as of the previous arrival.
    advanceAllTo(request.arrival_ns);
    if (online_options_.migration) {
        maybeMigrate();
    }

    int chosen = 0;
    if (online_options_.routing == RoutingMode::kLive) {
        chosen = online_router_->routeLive(
            request.arrival_ns, [this](int replica) {
                return engines_[static_cast<std::size_t>(replica)]
                    ->liveLoad();
            });
    } else {
        chosen = online_router_->route(
            request.arrival_ns, [this, &request](int replica) {
                return estimateFor(request, replica);
            });
    }
    ++online_assigned_[static_cast<std::size_t>(chosen)];
    return engines_[static_cast<std::size_t>(chosen)]->submitOnline(
        std::move(request));
}

ClusterReport
ServingCluster::shutdown()
{
    std::lock_guard<std::mutex> lock(mutex_);
    panic_if(!online_started_ || online_shutdown_,
             "ServingCluster::shutdown without an open session");
    online_shutdown_ = true;

    const std::size_t n = engines_.size();
    ClusterReport report;
    report.replicas.resize(n);
    report.assigned = online_assigned_;

    advanceAllTo(sim::kNoEventNs); // drain every replica completely
    for (std::size_t r = 0; r < n; ++r) {
        engines_[r]->closeOnline();
        report.replicas[r] = engines_[r]->endRun();
        ++progress_.replicas_finished;
        progress_.requests_finished += report.replicas[r].num_requests;
        progress_.tokens_served += report.replicas[r].prompt_tokens +
                                   report.replicas[r].decode_tokens;
    }
    mergeReports(report);
    return report;
}

} // namespace vattn::serving
