#include "serving/scheduler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vattn::serving
{

const char *
toString(SchedulingMode mode)
{
    switch (mode) {
      case SchedulingMode::kPrefillPrioritized:
        return "prefill_prioritized";
      case SchedulingMode::kStallFreeChunked:
        return "stall_free_chunked";
    }
    return "?";
}

i64
IterationPlan::prefillTokens() const
{
    i64 tokens = 0;
    for (const PrefillChunk &chunk : prefills) {
        tokens += chunk.tokens;
    }
    return tokens;
}

i64
Scheduler::Config::iterationTokenBudget() const
{
    if (mode == SchedulingMode::kStallFreeChunked && chunk_tokens > 0) {
        return chunk_tokens;
    }
    return max_batched_tokens;
}

Scheduler::Scheduler(Config config)
    : config_(config)
{
    fatal_if(config_.max_num_seqs <= 0, "max_num_seqs must be positive");
    fatal_if(config_.max_batched_tokens <= 0,
             "max_batched_tokens must be positive");
    fatal_if(config_.chunk_tokens < 0,
             "chunk_tokens must be non-negative");
}

void
Scheduler::enqueue(Request *request)
{
    panic_if(!request, "enqueue null request");
    request->state = Request::State::kWaiting;
    waiting_.push_back(request);
}

void
Scheduler::requeueFront(Request *request)
{
    panic_if(!request, "requeue null request");
    request->state = Request::State::kWaiting;
    waiting_.push_front(request);
}

Request *
Scheduler::frontWaiting() const
{
    return waiting_.empty() ? nullptr : waiting_.front();
}

void
Scheduler::popFrontWaiting()
{
    panic_if(waiting_.empty(), "popFrontWaiting on an empty queue");
    waiting_.pop_front();
}

Request *
Scheduler::backWaiting() const
{
    return waiting_.empty() ? nullptr : waiting_.back();
}

void
Scheduler::popBackWaiting()
{
    panic_if(waiting_.empty(), "popBackWaiting on an empty queue");
    waiting_.pop_back();
}

void
Scheduler::pushSwapped(Request *request)
{
    panic_if(!request, "pushSwapped null request");
    panic_if(request->slot < 0,
             "swapped request must keep its backend slot");
    request->state = Request::State::kSwapped;
    swapped_.push_back(request);
}

Request *
Scheduler::frontSwapped() const
{
    return swapped_.empty() ? nullptr : swapped_.front();
}

void
Scheduler::popFrontSwapped()
{
    panic_if(swapped_.empty(), "popFrontSwapped on an empty queue");
    swapped_.pop_front();
}

Request *
Scheduler::backSwapped() const
{
    return swapped_.empty() ? nullptr : swapped_.back();
}

void
Scheduler::popBackSwapped()
{
    panic_if(swapped_.empty(), "popBackSwapped on an empty queue");
    swapped_.pop_back();
}

void
Scheduler::clearWaiting()
{
    // Dropped requests must not keep kWaiting state or stale
    // slot/progress fields: a later enqueue (or inspection by the
    // caller) would see a request that claims to be queued and
    // half-computed when it is neither.
    for (Request *request : waiting_) {
        request->resetComputedState();
        request->state = Request::State::kPending;
    }
    waiting_.clear();
}

void
Scheduler::pickPrefillBatch(int num_running, const CanAdmit &can_admit,
                            std::vector<Request *> &picked)
{
    picked.clear();
    i64 batched_tokens = 0;
    while (!waiting_.empty()) {
        Request *request = waiting_.front();
        // Swapped-out requests count against the sequence cap: they
        // hold backend slots and will rejoin the running set.
        const int total_running =
            num_running + static_cast<int>(picked.size()) +
            static_cast<int>(swapped_.size());
        if (total_running >= config_.max_num_seqs) {
            break;
        }
        // FCFS: if the head cannot be admitted, nothing behind it may
        // jump the queue (no head-of-line bypass in vLLM v0.2.7).
        // can_admit also refreshes the request's prefix-cache hint,
        // which the token budget below discounts.
        if (!can_admit(*request)) {
            break;
        }
        // Token budget: the first prompt always fits (alone if huge);
        // further prompts must not push the batch over the budget.
        if (!picked.empty() &&
            batched_tokens + request->remainingPromptTokens() >
                config_.max_batched_tokens) {
            break;
        }
        waiting_.pop_front();
        batched_tokens += request->remainingPromptTokens();
        picked.push_back(request);
    }
}

std::vector<Request *>
Scheduler::pickPrefillBatch(int num_running, const CanAdmit &can_admit)
{
    std::vector<Request *> picked;
    pickPrefillBatch(num_running, can_admit, picked);
    return picked;
}

BatchComposer::BatchComposer(Scheduler::Config config)
    : config_(config)
{
}

void
BatchComposer::composeInto(
    IterationPlan &plan, Scheduler &scheduler,
    const std::vector<Request *> &running,
    const Scheduler::CanAdmit &can_admit)
{
    plan.clear();
    if (config_.mode == SchedulingMode::kStallFreeChunked) {
        composeStallFreeChunked(plan, scheduler, running, can_admit);
        return;
    }
    composePrefillPrioritized(plan, scheduler, running, can_admit);
}

IterationPlan
BatchComposer::compose(
    Scheduler &scheduler, const std::vector<Request *> &running,
    const Scheduler::CanAdmit &can_admit)
{
    IterationPlan plan;
    composeInto(plan, scheduler, running, can_admit);
    return plan;
}

void
BatchComposer::composePrefillPrioritized(
    IterationPlan &plan, Scheduler &scheduler,
    const std::vector<Request *> &running,
    const Scheduler::CanAdmit &can_admit)
{
    scheduler.pickPrefillBatch(static_cast<int>(running.size()),
                               can_admit, pick_scratch_);
    if (!pick_scratch_.empty()) {
        for (Request *request : pick_scratch_) {
            // Prefix-cache hits prefill only the uncached suffix.
            plan.prefills.push_back(PrefillChunk{
                request, request->remainingPromptTokens(), true});
        }
        return;
    }
    // A running request can be mid-prefill only when a prefix-cache
    // hit delivered fewer tokens than its admission hint promised (the
    // matched entry was sacrificed in between): finish its prompt in a
    // dedicated prefill iteration rather than miscounting it as a
    // decode. Without prefix caching every running request is past
    // prefill and this composes the historical decode iteration.
    for (Request *request : running) {
        if (!request->prefillComplete()) {
            plan.prefills.push_back(PrefillChunk{
                request, request->remainingPromptTokens(), false});
        }
    }
    if (!plan.prefills.empty()) {
        return;
    }
    plan.decodes.assign(running.begin(), running.end());
}

void
BatchComposer::composeStallFreeChunked(
    IterationPlan &plan, Scheduler &scheduler,
    const std::vector<Request *> &running,
    const Scheduler::CanAdmit &can_admit) const
{
    i64 budget = config_.iterationTokenBudget();

    // Decodes always ride along: one token of budget each.
    for (Request *request : running) {
        if (request->prefillComplete()) {
            plan.decodes.push_back(request);
            budget -= 1;
        }
    }

    // Ongoing (already admitted) prompts continue first, in admission
    // order: finishing started prefills frees their first token
    // soonest and keeps the running set small.
    for (Request *request : running) {
        if (request->prefillComplete() || budget <= 0) {
            continue;
        }
        const i64 chunk =
            std::min(budget,
                     request->prompt_tokens - request->prefilled_tokens);
        plan.prefills.push_back(PrefillChunk{request, chunk, false});
        budget -= chunk;
    }

    // Waiting prompts fill the leftover budget in FCFS chunk order.
    // The queue head gates admission (no head-of-line bypass), and a
    // new prompt is only admitted when it gets at least one token.
    // A prefix-cache hit (hint refreshed by can_admit) shrinks the
    // prompt's chunk demand to its uncached suffix. Swapped-out
    // requests keep their seats under the sequence cap.
    int num_running = static_cast<int>(running.size()) +
                      static_cast<int>(scheduler.numSwapped());
    while (budget > 0 && num_running < config_.max_num_seqs) {
        Request *head = scheduler.frontWaiting();
        if (!head || !can_admit(*head)) {
            break;
        }
        scheduler.popFrontWaiting();
        const i64 chunk =
            std::min(budget, head->remainingPromptTokens());
        plan.prefills.push_back(PrefillChunk{head, chunk, true});
        budget -= chunk;
        ++num_running;
    }
}

} // namespace vattn::serving
