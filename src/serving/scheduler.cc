#include "serving/scheduler.hh"

#include "common/logging.hh"

namespace vattn::serving
{

Scheduler::Scheduler(Config config)
    : config_(config)
{
    fatal_if(config_.max_num_seqs <= 0, "max_num_seqs must be positive");
    fatal_if(config_.max_batched_tokens <= 0,
             "max_batched_tokens must be positive");
}

void
Scheduler::enqueue(Request *request)
{
    panic_if(!request, "enqueue null request");
    request->state = Request::State::kWaiting;
    waiting_.push_back(request);
}

void
Scheduler::requeueFront(Request *request)
{
    panic_if(!request, "requeue null request");
    request->state = Request::State::kWaiting;
    waiting_.push_front(request);
}

std::vector<Request *>
Scheduler::pickPrefillBatch(
    int num_running,
    const std::function<bool(const Request &)> &can_admit)
{
    std::vector<Request *> picked;
    i64 batched_tokens = 0;
    while (!waiting_.empty()) {
        Request *request = waiting_.front();
        const int total_running =
            num_running + static_cast<int>(picked.size());
        if (total_running >= config_.max_num_seqs) {
            break;
        }
        // FCFS: if the head cannot be admitted, nothing behind it may
        // jump the queue (no head-of-line bypass in vLLM v0.2.7).
        if (!can_admit(*request)) {
            break;
        }
        // Token budget: the first prompt always fits (alone if huge);
        // further prompts must not push the batch over the budget.
        if (!picked.empty() &&
            batched_tokens + request->prompt_tokens >
                config_.max_batched_tokens) {
            break;
        }
        waiting_.pop_front();
        batched_tokens += request->prompt_tokens;
        picked.push_back(request);
    }
    return picked;
}

} // namespace vattn::serving
