/**
 * @file
 * PagedAttention memory backend: block-granular user-space accounting
 * over an up-front committed pool, as in vLLM. Block (de)allocation is
 * pure CPU bookkeeping (its cost lives in perf::OverheadModel); the
 * fragmentation behaviour — at most block_size-1 wasted tokens per
 * request — is what Figure 15 compares against page-group rounding.
 *
 * With prefix caching enabled the backend runs vLLM's hash-block
 * scheme on top of paged::BlockManager: full blocks are tagged with
 * chained content hashes as prefill completes them, refcount-0 blocks
 * park on an LRU evictable list instead of freeing, and a new request
 * whose prompt prefix matches a stored chain adopts the blocks by
 * reference (sharing is CPU-side bookkeeping — no data moves).
 *
 * Per-layer heterogeneous geometries: layers are grouped by attention
 * window class (full vs each sliding-window width), one BlockManager
 * per group with the budget split pro rata by layer count. Sliding
 * groups free a request's dead leading blocks as its window advances;
 * a uniform model collapses to the single historical manager with
 * bit-identical arithmetic.
 *
 * Tensor parallelism: one block pool per TP worker, each sized for a
 * num_kv_heads/tp KV shard and driven in lockstep — every mutation is
 * applied to all workers and must produce identical results (the pool
 * logic is deterministic, so divergence is a bug and panics).
 * Symmetric queries are answered by worker 0; auditInto() verifies the
 * cross-worker state equality that makes worker 0 representative.
 */

#ifndef VATTN_SERVING_PAGED_BACKEND_HH
#define VATTN_SERVING_PAGED_BACKEND_HH

#include <unordered_map>
#include <vector>

#include "paged/block_manager.hh"
#include "perf/model_spec.hh"
#include "perf/pcie_spec.hh"
#include "serving/memory_backend.hh"

namespace vattn::serving
{

/** Block-managed KV backend (the baseline systems). */
class PagedBackend : public MemoryBackend
{
  public:
    /**
     * @param model model architecture (for per-token KV bytes)
     * @param tp tensor-parallel degree: one lockstep block pool per
     *        worker, each holding a num_kv_heads/tp shard
     * @param block_size tokens per KV block
     * @param budget_bytes per-worker KV pool bytes
     * @param enable_prefix_caching hash-block prefix cache (§8.1)
     * @param host_swap_bytes per-worker CPU block pool for
     *        preempt-by-swap, the vLLM --swap-space model (0 disables
     *        the tier)
     * @param pcie link pricing the swap copies (block sharing itself
     *        stays free; only swap traffic crosses PCIe)
     */
    PagedBackend(const perf::ModelSpec &model, int tp, i64 block_size,
                 u64 budget_bytes, bool enable_prefix_caching = false,
                 u64 host_swap_bytes = 0,
                 perf::PcieSpec pcie = perf::PcieSpec::gen4x16());

    bool canAdmit(i64 uncached_tokens) const override;
    Result<int> allocSlot() override;
    bool prefixCachingEnabled() const override
    {
        return workers_[0].groups[0].manager.prefixCacheEnabled();
    }
    i64 matchPrefix(const PrefixKey &key) const override;
    Result<SlotLease> allocSlot(const PrefixKey &key,
                                i64 max_cached) override;
    void registerPrefix(int slot, const PrefixKey &key,
                        i64 tokens) override;
    BackendPrefixStats prefixStats() const override
    {
        return workers_[0].prefix;
    }
    void freeSlot(int slot) override;
    Result<TimeNs> ensure(const ActiveLens &active) override;
    void computeWindow(TimeNs window_ns) override;
    u64 bytesInUse() const override;
    u64 budgetBytes() const override;
    /** Per-worker block-manager self-audits + slot/manager
     *  cross-checks + the cross-worker lockstep-equality check. */
    void auditInto(audit::AuditReport &report) const override;

    bool supportsSwap() const override;
    bool canSwapOut(int slot) const override;
    bool canSwapIn(int slot) const override;
    Result<SwapResult> swapOut(int slot) override;
    Result<SwapResult> swapIn(int slot) override;
    u64 slotPhysBytes(int slot) const override;

    bool supportsKvExport() const override { return supportsSwap(); }
    Result<SwappedKvImage> exportSwapped(int slot) override;
    bool canImportSwapped(const SwappedKvImage &image) const override;
    Result<int> importSwapped(const SwappedKvImage &image) override;

    /** Number of lockstep TP workers (block-pool replicas). */
    int numWorkers() const
    {
        return static_cast<int>(workers_.size());
    }

    /** Worker 0's full-attention manager (the only group on uniform
     *  models — the historical accessor for tests and benches). */
    paged::BlockManager &blockManager()
    {
        return workers_[0].groups[0].manager;
    }
    i64 blockSize() const
    {
        return workers_[0].groups[0].manager.blockSize();
    }

    /** Number of window classes (1 for uniform models). */
    int numLayerGroups() const
    {
        return static_cast<int>(workers_[0].groups.size());
    }
    /** Worker 0's manager of window class @p group. */
    paged::BlockManager &groupManager(int group)
    {
        return workers_[0]
            .groups[static_cast<std::size_t>(group)]
            .manager;
    }
    /** Window width of class @p group (0 = full attention). */
    i64 groupWindowTokens(int group) const
    {
        return workers_[0]
            .groups[static_cast<std::size_t>(group)]
            .window_tokens;
    }

    /** Blocks held by one slot across all groups, per worker
     *  (overhead-model inputs; dead window leads excluded). */
    i64 blocksHeld(int slot) const;

  private:
    /** One window class: the layers sharing an attention window and
     *  their dedicated block pool. */
    struct LayerGroup
    {
        i64 window_tokens;   ///< 0 = full attention
        int layers;          ///< layers in this class
        u64 bytes_per_block; ///< 2 * layers * H_kv/tp * D * P * bs
        paged::BlockManager manager;
    };

    struct Slot
    {
        /** One block list per layer group, parallel to groups. */
        std::vector<paged::RequestBlocks> blocks;
        /** Chained hash per full prompt block already registered
         *  (prefix caching is uniform-only: group 0). */
        std::vector<u64> hashes;
        /** Running chain value after hashes.back(). */
        u64 chain = 0;
        /** Per-group CPU blocks while swapped out (all empty =
         *  resident). */
        std::vector<std::vector<i32>> cpu_blocks;
        /** Per-group dead-lead boundary at swap-out time. */
        std::vector<i64> swap_leads;

        bool
        swapped() const
        {
            for (const auto &group : cpu_blocks) {
                if (!group.empty()) {
                    return true;
                }
            }
            return false;
        }
    };

    /** One TP worker's complete block-pool state. The pool logic is
     *  deterministic, so feeding every worker the same call sequence
     *  keeps the replicas byte-identical (verified by auditInto). */
    struct WorkerPool
    {
        std::vector<LayerGroup> groups;
        std::unordered_map<int, Slot> slots;
        int next_slot = 0;
        BackendPrefixStats prefix;

        i64 deadLeadBlocks(const LayerGroup &group, i64 tokens) const;
        bool canAdmit(i64 uncached_tokens) const;
        int allocSlot();
        i64 matchPrefix(const PrefixKey &key) const;
        SlotLease adoptPrefix(int slot, const PrefixKey &key,
                              i64 max_cached);
        void registerPrefix(int slot, const PrefixKey &key,
                            i64 tokens);
        void freeSlot(int slot);
        Status ensureSlot(int slot, i64 len);
        bool canSwapOut(int slot) const;
        bool canSwapIn(int slot) const;
        Result<u64> swapOutSlot(int slot);
        Result<u64> swapInSlot(int slot);
        Result<u64> exportSlot(int slot, SwappedKvImage &image);
        bool canImportImage(const SwappedKvImage &image) const;
        Result<int> importImage(const SwappedKvImage &image);
        u64 slotPhysBytes(int slot) const;
        u64 bytesInUse() const;
        i64 blocksHeld(int slot) const;
        void auditInto(audit::AuditReport &report,
                       std::size_t worker) const;
    };

    u64 budget_bytes_;
    perf::PcieSpec pcie_;
    std::vector<WorkerPool> workers_;
};

} // namespace vattn::serving

#endif // VATTN_SERVING_PAGED_BACKEND_HH
