/**
 * @file
 * PagedAttention memory backend: block-granular user-space accounting
 * over an up-front committed pool, as in vLLM. Block (de)allocation is
 * pure CPU bookkeeping (its cost lives in perf::OverheadModel); the
 * fragmentation behaviour — at most block_size-1 wasted tokens per
 * request — is what Figure 15 compares against page-group rounding.
 */

#ifndef VATTN_SERVING_PAGED_BACKEND_HH
#define VATTN_SERVING_PAGED_BACKEND_HH

#include <unordered_map>

#include "paged/block_manager.hh"
#include "perf/model_spec.hh"
#include "serving/memory_backend.hh"

namespace vattn::serving
{

/** Block-managed KV backend (the baseline systems). */
class PagedBackend : public MemoryBackend
{
  public:
    /**
     * @param model model architecture (for per-token KV bytes)
     * @param tp tensor-parallel degree (capacity is per worker)
     * @param block_size tokens per KV block
     * @param budget_bytes per-worker KV pool bytes
     */
    PagedBackend(const perf::ModelSpec &model, int tp, i64 block_size,
                 u64 budget_bytes);

    bool canAdmit(i64 prompt_tokens) const override;
    Result<int> allocSlot() override;
    void freeSlot(int slot) override;
    Result<TimeNs> ensure(const ActiveLens &active) override;
    void computeWindow(TimeNs window_ns) override;
    u64 bytesInUse() const override;
    u64 budgetBytes() const override;

    paged::BlockManager &blockManager() { return manager_; }
    i64 blockSize() const { return manager_.blockSize(); }

    /** Blocks held by one slot (overhead-model inputs). */
    i64 blocksHeld(int slot) const;

  private:
    u64 bytes_per_block_;
    u64 budget_bytes_;
    paged::BlockManager manager_;
    std::unordered_map<int, paged::RequestBlocks> slots_;
    int next_slot_ = 0;
};

} // namespace vattn::serving

#endif // VATTN_SERVING_PAGED_BACKEND_HH
