#include "serving/vattn_backend.hh"

#include "common/logging.hh"

namespace vattn::serving
{

VAttentionBackend::VAttentionBackend(const perf::ModelSpec &model,
                                     int tp, u64 budget_bytes)
    : VAttentionBackend(model, tp, budget_bytes, Options{})
{
}

VAttentionBackend::VAttentionBackend(const perf::ModelSpec &model,
                                     int tp, u64 budget_bytes,
                                     Options options)
{
    core::Config config;
    config.num_layers = model.num_layers;
    config.num_kv_heads = model.kvHeadsPerWorker(tp);
    config.head_dim = model.head_dim;
    config.bytes_per_elem = model.bytes_per_elem;
    config.max_batch_size = options.max_batch_size;
    config.max_context_len = model.max_context_len;
    config.page_group = options.page_group;
    config.use_driver_extension =
        options.page_group != PageGroup::k2MB;
    config.tensor_slicing = options.tensor_slicing;
    config.deferred_reclamation = options.deferred_reclamation;
    config.eager_allocation = options.eager_allocation;
    config.overlap_allocation = options.overlap_allocation;
    config.prefix_caching = options.enable_prefix_caching;
    config.phys_budget_bytes = budget_bytes;
    config.host_swap_bytes = options.host_swap_bytes;
    if (model.hasSlidingLayers()) {
        // Per-layer geometries: sliding-window layers only keep the
        // live window of KV mapped. Uniform models leave the list
        // empty — the historical single-shape path, byte for byte.
        config.layers.resize(
            static_cast<std::size_t>(model.num_layers));
        for (int layer = 0; layer < model.num_layers; ++layer) {
            const i64 window = model.windowTokensOf(layer);
            auto &spec =
                config.layers[static_cast<std::size_t>(layer)];
            if (window > 0) {
                spec.kind = core::AttentionKind::kSlidingWindow;
                spec.window_tokens = window;
            }
        }
    }
    config.validate().expectOk("vAttention backend config");

    // Each device needs room for its worker's KV shard budget;
    // weights/activations are modelled by the budget split in the
    // engine, not materialized.
    const u64 device_mem_bytes =
        roundUp(budget_bytes + 64 * MiB, 2 * MiB);
    // alloc-ok: backend construction, once per engine
    group_ = std::make_unique<core::WorkerGroup>(tp, config,
                                                 device_mem_bytes);
    seq_lens_.assign(static_cast<std::size_t>(options.max_batch_size),
                     0);
    prefix_caching_ = options.enable_prefix_caching;
}

void
VAttentionBackend::setCopyModel(
    const cuvmm::LatencyModel::CopyModel &model)
{
    for (int w = 0; w < group_->numWorkers(); ++w) {
        group_->driver(w).latency().setCopyModel(model);
    }
}

bool
VAttentionBackend::canAdmit(i64 uncached_tokens) const
{
    return group_->canAllocate(uncached_tokens);
}

Result<int>
VAttentionBackend::allocSlot()
{
    return group_->allocReqId();
}

core::PrefixQuery
VAttentionBackend::buildQuery(const PrefixKey &key) const
{
    core::PrefixQuery query;
    query.total_tokens = key.size;
    const i64 tpg = group_->geometry().tokensPerGroup();
    query.group_hashes = key.chunkHashes(tpg);
    query.tail_hash = [key, tpg](u64 prev, i64 groups, i64 n) {
        return key.rangeHash(prev, groups * tpg, n);
    };
    return query;
}

i64
VAttentionBackend::matchPrefix(const PrefixKey &key) const
{
    if (!prefix_caching_ || key.empty()) {
        return 0;
    }
    return group_->matchPrefix(buildQuery(key)).tokens;
}

Result<SlotLease>
VAttentionBackend::allocSlot(const PrefixKey &key, i64 max_cached)
{
    if (!prefix_caching_ || key.empty()) {
        auto slot = group_->allocReqId();
        if (!slot.isOk()) {
            return Result<SlotLease>(slot.status());
        }
        return SlotLease{slot.value(), 0, 0};
    }
    i64 cached = 0;
    auto slot = group_->allocReqIdWithPrefix(buildQuery(key),
                                             max_cached, &cached);
    if (!slot.isOk()) {
        return Result<SlotLease>(slot.status());
    }
    return SlotLease{slot.value(), cached,
                     group_->lastPrefixAllocNs()};
}

void
VAttentionBackend::registerPrefix(int slot, const PrefixKey &key,
                                  i64 tokens)
{
    if (!prefix_caching_ || key.empty()) {
        return;
    }
    group_->registerPrefix(slot, buildQuery(key), tokens);
}

BackendPrefixStats
VAttentionBackend::prefixStats() const
{
    const auto &stats = group_->stats();
    const u64 group_bytes = group_->geometry().groupBytes();
    return BackendPrefixStats{
        static_cast<u64>(stats.prefix_aliased_handles) * group_bytes,
        static_cast<u64>(stats.prefix_copied_handles) * group_bytes,
    };
}

void
VAttentionBackend::freeSlot(int slot)
{
    seq_lens_[static_cast<std::size_t>(slot)] = 0;
    group_->freeReqId(slot).expectOk("freeReqId");
}

Result<TimeNs>
VAttentionBackend::ensure(const ActiveLens &active)
{
    std::fill(seq_lens_.begin(), seq_lens_.end(), 0);
    for (const auto &[slot, len] : active) {
        seq_lens_[static_cast<std::size_t>(slot)] = len;
    }
    // Workers allocate their shards concurrently, so the group's
    // critical path is one worker's (the stats are worker 0's, with
    // divergence panics inside the group).
    last_step_ = group_->step(seq_lens_);
    if (!last_step_.status.isOk()) {
        return Result<TimeNs>(last_step_.status);
    }
    // Driver time banked by failed swap-in attempts rides the next
    // iteration's critical path (0 in the common case).
    const TimeNs failed_swap = failed_swap_ns_;
    failed_swap_ns_ = 0;
    return last_step_.critical_ns + failed_swap;
}

void
VAttentionBackend::computeWindow(TimeNs window_ns)
{
    group_->computePhase(window_ns);
}

bool
VAttentionBackend::supportsSwap() const
{
    return group_->hostSwapBudgetBytes() > 0;
}

bool
VAttentionBackend::canSwapOut(int slot) const
{
    return group_->canSwapOut(slot);
}

bool
VAttentionBackend::canSwapIn(int slot) const
{
    return group_->canSwapIn(slot);
}

Result<SwapResult>
VAttentionBackend::swapOut(int slot)
{
    const auto stats = group_->swapOutReq(slot);
    if (!stats.status.isOk()) {
        return Result<SwapResult>(stats.status);
    }
    seq_lens_[static_cast<std::size_t>(slot)] = 0;
    return SwapResult{stats.bytes, stats.critical_ns};
}

Result<SwapResult>
VAttentionBackend::swapIn(int slot)
{
    const auto stats = group_->swapInReq(slot);
    if (!stats.status.isOk()) {
        // The failed attempt still did modeled driver work (cached
        // steals, partial remap + rollback). An error result carries
        // no time, so bank it and charge the next ensure().
        failed_swap_ns_ += stats.critical_ns;
        return Result<SwapResult>(stats.status);
    }
    return SwapResult{stats.bytes, stats.critical_ns};
}

Result<SwappedKvImage>
VAttentionBackend::exportSwapped(int slot)
{
    auto image = group_->exportSwapped(slot);
    if (!image.isOk()) {
        return Result<SwappedKvImage>(image.status());
    }
    seq_lens_[static_cast<std::size_t>(slot)] = 0;
    const auto &core_image = image.value();
    SwappedKvImage out;
    // Per-worker shard bytes, the same convention SwapResult::bytes
    // uses (each worker stashed its own shard of identical shape).
    out.bytes = core_image.bytes;
    out.buffer_leads = core_image.buffer_leads;
    out.buffer_sizes = core_image.buffer_sizes;
    out.group_frontier = core_image.groups;
    out.handles = core_image.handles;
    return out;
}

bool
VAttentionBackend::canImportSwapped(const SwappedKvImage &image) const
{
    if (!supportsSwap() || image.buffer_leads.empty() ||
        image.buffer_sizes.size() != image.buffer_leads.size()) {
        return false;
    }
    if (static_cast<i64>(image.buffer_leads.size()) !=
        group_->geometry().numBuffers()) {
        return false;
    }
    return group_->canImportSwapped(image.handles);
}

Result<int>
VAttentionBackend::importSwapped(const SwappedKvImage &image)
{
    if (image.buffer_leads.empty()) {
        return Result<int>(ErrorCode::kInvalidArgument,
                           "not a vAttention-backend image");
    }
    core::VAttention::HostKvImage core_image;
    core_image.buffer_leads = image.buffer_leads;
    core_image.buffer_sizes = image.buffer_sizes;
    core_image.groups = image.group_frontier;
    core_image.handles = image.handles;
    core_image.bytes = image.bytes;
    auto slot = group_->importSwapped(core_image);
    if (slot.isOk()) {
        seq_lens_[static_cast<std::size_t>(slot.value())] = 0;
    }
    return slot;
}

u64
VAttentionBackend::slotPhysBytes(int slot) const
{
    // mappedHandles counts each buffer's live [lead, end) range:
    // groupsMapped * numBuffers would over-state window-trimmed slots
    // (the frontier includes unmapped dead leads).
    return static_cast<u64>(group_->mappedHandles(slot)) *
           group_->geometry().groupBytes();
}

u64
VAttentionBackend::bytesInUse() const
{
    // Per-worker shard bytes (workers are symmetric): the engine's
    // budget and admission math are per worker throughout.
    return group_->physBytesMappedPerWorker();
}

u64
VAttentionBackend::budgetBytes() const
{
    return group_->budgetBytesPerWorker();
}

} // namespace vattn::serving
