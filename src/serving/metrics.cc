#include "serving/metrics.hh"

#include "common/sim_clock.hh"

namespace vattn::serving
{

double
RunReport::requestsPerMinute() const
{
    if (makespan_ns == 0) {
        return 0;
    }
    return static_cast<double>(num_requests) /
           (SimClock::toSeconds(makespan_ns) / 60.0);
}

double
RunReport::decodeTokensPerSecond() const
{
    if (makespan_ns == 0) {
        return 0;
    }
    return static_cast<double>(decode_tokens) /
           SimClock::toSeconds(makespan_ns);
}

double
RunReport::prefillTokensPerSecond() const
{
    if (makespan_ns == 0) {
        return 0;
    }
    return static_cast<double>(prompt_tokens) /
           SimClock::toSeconds(makespan_ns);
}

void
RunReport::addRequest(const Request &request)
{
    ++num_requests;
    prompt_tokens += request.prompt_tokens;
    decode_tokens += request.generated;
    preemptions += request.preemptions;
    latency_s.add(SimClock::toSeconds(request.finish_ns -
                                      request.arrival_ns));
    ttft_s.add(SimClock::toSeconds(request.prefill_done_ns -
                                   request.arrival_ns));
}

} // namespace vattn::serving
