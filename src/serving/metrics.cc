#include "serving/metrics.hh"

#include "common/sim_clock.hh"

namespace vattn::serving
{

namespace
{

/** Rate helper guarding the empty-run case: a report with no elapsed
 *  virtual time (e.g. Engine::run({})) must report 0, not inf/NaN. */
double
perSecond(i64 count, TimeNs makespan_ns)
{
    if (makespan_ns == 0) {
        return 0.0;
    }
    return static_cast<double>(count) / SimClock::toSeconds(makespan_ns);
}

} // namespace

double
RunReport::requestsPerMinute() const
{
    return perSecond(num_requests, makespan_ns) * 60.0;
}

double
RunReport::decodeTokensPerSecond() const
{
    return perSecond(decode_tokens, makespan_ns);
}

double
RunReport::prefillTokensPerSecond() const
{
    return perSecond(prompt_tokens, makespan_ns);
}

double
RunReport::prefixHitRate() const
{
    if (prefix_lookups == 0) {
        return 0.0;
    }
    return static_cast<double>(prefix_hits) /
           static_cast<double>(prefix_lookups);
}

double
RunReport::prefillSavedFraction() const
{
    if (prompt_tokens == 0) {
        return 0.0;
    }
    return static_cast<double>(prefill_tokens_saved) /
           static_cast<double>(prompt_tokens);
}

void
RunReport::addRequest(const Request &request)
{
    ++num_requests;
    prompt_tokens += request.prompt_tokens;
    decode_tokens += request.generated;
    latency_s.add(SimClock::toSeconds(request.finish_ns -
                                      request.arrival_ns));
    ttft_s.add(SimClock::toSeconds(request.prefill_done_ns -
                                   request.arrival_ns));
    if (request.generated > 0) {
        normalized_latency_s.add(
            SimClock::toSeconds(request.finish_ns -
                                request.arrival_ns) /
            static_cast<double>(request.generated));
    }
}

} // namespace vattn::serving
