#include "serving/metrics.hh"

#include "common/sim_clock.hh"

namespace vattn::serving
{

namespace
{

/** Rate helper guarding the empty-run case: a report with no elapsed
 *  virtual time (e.g. Engine::run({})) must report 0, not inf/NaN. */
double
perSecond(i64 count, TimeNs makespan_ns)
{
    if (makespan_ns == 0) {
        return 0.0;
    }
    return static_cast<double>(count) / SimClock::toSeconds(makespan_ns);
}

} // namespace

double
RunReport::requestsPerMinute() const
{
    return perSecond(num_requests, makespan_ns) * 60.0;
}

double
RunReport::decodeTokensPerSecond() const
{
    return perSecond(decode_tokens, makespan_ns);
}

double
RunReport::prefillTokensPerSecond() const
{
    return perSecond(prompt_tokens, makespan_ns);
}

double
RunReport::prefixHitRate() const
{
    if (prefix_lookups == 0) {
        return 0.0;
    }
    return static_cast<double>(prefix_hits) /
           static_cast<double>(prefix_lookups);
}

double
RunReport::prefillSavedFraction() const
{
    if (prompt_tokens == 0) {
        return 0.0;
    }
    return static_cast<double>(prefill_tokens_saved) /
           static_cast<double>(prompt_tokens);
}

double
RunReport::goodput() const
{
    if (slo_requests == 0) {
        return 0.0;
    }
    return static_cast<double>(slo_met_requests) /
           static_cast<double>(slo_requests);
}

void
RunReport::addRequest(const Request &request)
{
    ++num_requests;
    prompt_tokens += request.prompt_tokens;
    decode_tokens += request.generated;
    latency_s.add(SimClock::toSeconds(request.finish_ns -
                                      request.arrival_ns));
    ttft_s.add(SimClock::toSeconds(request.prefill_done_ns -
                                   request.arrival_ns));
    if (request.generated > 0) {
        normalized_latency_s.add(
            SimClock::toSeconds(request.finish_ns -
                                request.arrival_ns) /
            static_cast<double>(request.generated));
    }
    if (request.hasSlo()) {
        ++slo_requests;
        if (request.ttft_violated) {
            ++slo_violations_ttft;
        }
        if (request.tbt_violated) {
            ++slo_violations_tbt;
        }
        if (!request.ttft_violated && !request.tbt_violated) {
            ++slo_met_requests;
        }
    }
}

void
RunReport::addRejected(const Request &request)
{
    // Dropped and shed requests were never served: they count against
    // goodput (an SLO-carrying request the system failed) without
    // polluting the latency percentiles, and without a TTFT/TBT
    // violation tally — dropped_requests / shed_requests carry the
    // breakdown.
    if (request.hasSlo()) {
        ++slo_requests;
    }
}

} // namespace vattn::serving
