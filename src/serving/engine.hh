/**
 * @file
 * The serving engine: continuous-batching event loop over a virtual
 * clock, combining the memory backend (paged or vAttention), the
 * roofline kernel model and the CPU overhead model. One Engine models
 * one model replica (TP workers behave identically and advance in
 * lockstep, so a single simulated worker carries the per-worker state
 * while kernel times account for the TP split).
 *
 * Iteration composition lives outside the engine: every loop step
 * asks the scheduler layer's BatchComposer for an IterationPlan (a
 * set of decode requests plus prefill chunks) and executes it with
 * runIteration(). The composer's SchedulingMode decides whether
 * prefills run as monolithic prioritized iterations (vLLM v0.2.7) or
 * as stall-free chunks riding along with decodes (Sarathi-style
 * hybrid batching, the paper's §7 serving harness).
 */

#ifndef VATTN_SERVING_ENGINE_HH
#define VATTN_SERVING_ENGINE_HH

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/audit.hh"
#include "common/sim_clock.hh"
#include "sim/event_queue.hh"
#include "perf/backend_kind.hh"
#include "perf/gpu_spec.hh"
#include "perf/kernel_model.hh"
#include "perf/model_spec.hh"
#include "perf/nccl_spec.hh"
#include "perf/overhead_model.hh"
#include "perf/pcie_spec.hh"
#include "serving/memory_backend.hh"
#include "serving/metrics.hh"
#include "serving/router.hh"
#include "serving/scheduler.hh"
#include "serving/vattn_backend.hh"
#include "serving/workload.hh"

namespace vattn::serving
{

/**
 * How the engine resolves out-of-memory during an iteration
 * (which fate the preemption victim meets).
 */
enum class PreemptionPolicy : u8
{
    /** Free the victim's KV and recompute its prefill from token 0
     *  later (vLLM's recomputation preemption; the historical
     *  behaviour and the default). */
    kRecompute,
    /** Swap the victim's KV to host memory and copy it back when
     *  capacity returns; no prefill FLOPs are repeated. Falls back to
     *  recomputation when the victim cannot be swapped (prefix-aliased
     *  pages, host tier full). */
    kSwap,
    /** Per victim, compare the modeled recompute time (roofline
     *  prefill of its computed tokens) against the modeled PCIe round
     *  trip of its KV bytes and pick the cheaper. */
    kAuto,
};

const char *toString(PreemptionPolicy policy);

/** Which running request a preemption selects as the victim. */
enum class PreemptionVictim : u8
{
    /** Most recently admitted first (vLLM; the historical default). */
    kLifo,
    /** The request whose prefill is cheapest to redo (smallest modeled
     *  recompute cost); ties break toward most recently admitted. */
    kSmallestRecompute,
};

const char *toString(PreemptionVictim policy);

/** Everything needed to stand up one serving deployment. */
struct EngineConfig
{
    perf::ModelSpec model = perf::ModelSpec::yi6B();
    perf::GpuSpec gpu = perf::GpuSpec::a100();
    /** Tensor-parallel degree: the replica runs one lockstep worker
     *  per rank (num_kv_heads/tp KV shards, §5.3); kernel times use
     *  the per-worker head counts and commTime adds the all-reduces. */
    int tp_degree = 1;
    perf::BackendKind backend = perf::BackendKind::kFa2VAttention;
    /** Interconnect collective cost model for TP all-reduces. The
     *  default (unset) resolves to NcclSpec::legacy(gpu.nvlink) — the
     *  historical flat α–β numbers, bit-for-bit. */
    perf::NcclSpec nccl = {};
    /** Overlap the per-iteration all-reduce time with attention +
     *  linear compute: only the exposed portion (comm beyond the
     *  compute it can hide behind) lengthens the iteration. Off by
     *  default — the historical fully-serialized accounting. */
    bool overlap_comm = false;

    /** vLLM-style memory split: KV gets util * mem - weights -
     *  activation reserve (per worker). */
    double gpu_mem_util = 0.90;
    u64 activation_reserve_bytes = 2 * GiB;
    /** Non-zero overrides the computed per-worker KV budget. */
    u64 kv_budget_override = 0;

    VAttentionBackend::Options vattn = {};
    Scheduler::Config scheduler = {};
    bool record_iterations = false;
    /** §8.1 shared-prefix KV reuse, on whichever backend is chosen
     *  (hash-block caching for paged, page-group aliasing for
     *  vAttention). Only effective for traces carrying token ids. */
    bool enable_prefix_caching = false;

    // ---- Memory-pressure policy -------------------------------------
    /** What happens to preemption victims (default: recompute, the
     *  historical behaviour — runs are bit-for-bit unchanged). */
    PreemptionPolicy preemption_policy = PreemptionPolicy::kRecompute;
    /** Victim selection (default: LIFO, the historical behaviour). */
    PreemptionVictim preemption_victim = PreemptionVictim::kLifo;
    /** Per-worker host memory for the KV swap tier. Only committed
     *  when the policy can swap (kSwap/kAuto). */
    u64 host_swap_bytes = 16 * GiB;
    /** PCIe link pricing swap copies and the kAuto cost comparison. */
    perf::PcieSpec pcie = perf::PcieSpec::gen4x16();

    // ---- SLO-aware admission ----------------------------------------
    /** Shed waiting requests whose TTFT deadline is already impossible
     *  to meet (earliest possible first token past the deadline)
     *  instead of serving them late. Off by default — the historical
     *  serve-everything behaviour, bit-for-bit. */
    bool shed_on_ttft = false;

    /** Per-worker KV pool size implied by the settings above. */
    u64 kvBudgetPerWorker() const;
};

/** One model replica under simulation. */
class Engine
{
  public:
    explicit Engine(EngineConfig config);

    /** Serve a whole trace (offline or online per arrival times). */
    RunReport run(std::vector<Request> trace);

    // ---- Incremental run API (event-driven drivers) -------------------
    //
    // run() is a thin wrapper over these three calls, so both entry
    // points execute the identical loop body: beginRun() feeds the
    // trace into the arrival event queue, stepRun() performs exactly
    // one scheduling step (pending admissions + one iteration, or an
    // idle jump to the next arrival), endRun() finalizes the report.
    // A cluster coordinator interleaves many replicas by repeatedly
    // stepping whichever one has the earliest nextEventNs().

    /** Start an incremental run (the engine takes the trace). */
    void beginRun(std::vector<Request> trace);
    /** Requests still in flight (stepRun may be called)? */
    bool runActive() const { return run_finished_ < run_total_; }
    /**
     * Virtual time of the engine's next action: now() when work is
     * runnable immediately, the next arrival when idle, and
     * sim::kNoEventNs when the run is complete.
     */
    TimeNs nextEventNs() const;
    /** Execute one scheduling step (precondition: runActive()). */
    void stepRun();
    /** Finish the run and return the report. */
    RunReport endRun();

    // ---- Online submission (streaming serving path) -------------------
    //
    // The offline API hands over a whole trace up front; the online
    // API feeds requests mid-flight: beginOnline() opens a session,
    // submitOnline() adds one request (arrival times must be
    // non-decreasing — the driver dispatches arrivals in virtual-time
    // order), closeOnline() ends the stream. The session is driven by
    // the same nextEventNs()/stepRun() loop and finalized by endRun()
    // once every submitted request terminated. Terminal requests are
    // garbage-collected off the front of the ownership deque, so live
    // memory is bounded by the in-flight set, not the session length.

    /** Open an online session. @p expected_requests pre-sizes the
     *  report's sample stores (0 = grow on demand). */
    void beginOnline(std::size_t expected_requests = 0);
    /** Feed one request mid-flight. Errors — instead of panicking —
     *  when no session is open or arrivals go back in time. */
    Status submitOnline(Request request);
    /** Declare the stream finished; drain via stepRun, then endRun. */
    void closeOnline();
    bool onlineOpen() const { return online_open_; }
    /** Requests currently owned by the session (bounded-memory
     *  checks: stays O(in-flight) as terminal requests are GC'd). */
    std::size_t ownedRequests() const { return owned_.size(); }

    // ---- Live load & cross-replica migration --------------------------

    /** Live state snapshot for SLO-aware routing (Router::routeLive). */
    Router::LiveLoad liveLoad() const;

    /**
     * Hand the newest waiting request to @p target. No KV moves — a
     * queued request holds none — so this is pure bookkeeping: the
     * donor keeps a kMigrated tombstone, the target enqueues a copy.
     * False when nothing is queued.
     */
    bool migrateQueuedTo(Engine &target);

    /**
     * Hand the newest swapped-out request to @p target over the host
     * tier: the KV image is exported here (freeing this replica's
     * slot and host pages) and imported there; the target's regular
     * swap-in then pays the HtoD copy. The whole lockstep TP group
     * migrates as a unit on both sides. False when there is no
     * movable request or the target cannot adopt the image (wrong
     * backend family or geometry, no free slot, host tier full) — the
     * donor re-imports its own image, so failure is side-effect-free.
     */
    bool migrateSwappedTo(Engine &target);

    // ---- Microbenchmark entry points ----------------------------------

    struct DecodeRun
    {
        double tokens_per_s = 0;
        double alloc_bytes_per_s = 0; ///< KV commit rate, all workers
        double mean_iter_ms = 0;
        /** Requests still running at the end; smaller than the asked
         *  batch when the KV budget forced preemptions (vLLM-style). */
        i64 effective_batch = 0;
        u64 preemptions = 0;
        Percentiles iter_ms;
        std::vector<IterationRecord> iterations;
    };

    /** Figure 4/8 style run: @p batch requests at @p initial_ctx
     *  context, timed for @p iterations decode steps (prefill is
     *  performed but not timed). */
    DecodeRun decodeOnly(int batch, i64 initial_ctx, int iterations);

    /** Same, with per-request initial contexts (Figure 12 staggers
     *  page-group boundary crossings across the batch). */
    DecodeRun decodeOnlyVaried(const std::vector<i64> &initial_ctx,
                               int iterations);

    struct PrefillRun
    {
        TimeNs total_ns = 0;
        TimeNs attention_ns = 0;
        TimeNs linear_ns = 0;
        TimeNs mem_ns = 0; ///< critical-path allocation
        TimeNs cpu_ns = 0;
        TimeNs comm_ns = 0;
    };

    /** Prefill a single fresh request of @p ctx tokens and release it
     *  (completion path honours deferred reclamation, so back-to-back
     *  calls reproduce the Figure 13 reuse behaviour). */
    PrefillRun prefillOnce(i64 ctx);

    // ---- Introspection -------------------------------------------------

    /**
     * One whole-stack audit sweep: serving containers + request states
     * (serving_audit.hh) and the memory backend's layers down to the
     * driver ledgers. Always compiled; VATTN_AUDIT builds additionally
     * run it after every engine iteration and panic on violations.
     */
    audit::AuditReport auditNow() const;

    const EngineConfig &config() const { return config_; }
    const perf::KernelModel &kernelModel() const { return kernel_; }
    const perf::OverheadModel &overheadModel() const { return overhead_; }
    MemoryBackend &backend() { return *backend_; }
    /** Non-null when the backend is vAttention. */
    VAttentionBackend *vattnBackend() { return vattn_backend_; }
    SimClock &clock() { return clock_; }

  private:
    /** Move every arrival due at the current clock into the queue. */
    void admitArrivals();
    /**
     * Prompt tokens the backend would actually have to back fresh,
     * refreshing the request's prefix-cache hint. The single source of
     * truth for admission: canAdmitRequest, the composer's budgets and
     * the starvation check all go through it, so they agree on
     * prefix-discounted demand.
     */
    i64 uncachedPromptTokens(Request &request) const;
    /** Memory admission gate (prefix-aware). */
    bool canAdmitRequest(Request &request) const;
    /** Per-request KV target lengths for this iteration: contextLen()
     *  for everything running, except prefill-chunk members whose
     *  target includes the chunk being computed. Fills and returns the
     *  reusable active_lens_ scratch (allocation-free steady state). */
    const ActiveLens &activeLens(const IterationPlan &plan);
    /** ensure() with preemption-on-OOM; returns critical ns (swap-out
     *  stalls included — they happen inside the iteration). */
    TimeNs ensureWithPreemption(const IterationPlan &plan,
                                RunReport &report);
    /** The running request the configured victim policy selects. */
    Request *pickVictim();
    /** Modeled cost of re-prefilling the request's computed tokens. */
    TimeNs recomputeCostNs(const Request *request) const;
    /** Preempt one victim per the configured policy: swap it to host
     *  (stall added to @p swap_stall_ns) or free-and-requeue it for
     *  recomputation. */
    void preemptOne(RunReport &report, TimeNs *swap_stall_ns);
    /** Swap queued-out requests back in, FCFS, before any new
     *  admission; forced when the device is otherwise idle. */
    void swapInReady(RunReport &report);
    /** Permanently reject a request whose KV demand can never be met
     *  (graceful per-request failure; keeps serving). */
    void dropRequest(Request *request, RunReport &report);
    /** Modeled prefill time of the request's remaining prompt (the
     *  shedding check's earliest-possible-first-token estimate). */
    TimeNs prefillCostNs(const Request *request) const;
    /** Shed queue heads whose TTFT deadline is already impossible
     *  (no-op unless EngineConfig::shed_on_ttft). */
    void shedHopeless(RunReport &report);
    void shedRequest(Request *request, RunReport &report);
    /** Pop terminal requests off the front of the ownership deque. */
    void gcOnline();
    /** Grow the report's sample stores geometrically at submission
     *  time so stepRun's sample adds never reallocate (the online
     *  analogue of beginRun's whole-trace reservation). */
    void reserveOnlineSamples(const Request &request);
    /** Take ownership of a migrated-in request and queue it. */
    void adoptMigrant(Request request, bool swapped);
    void finishRequest(Request *request, RunReport &report);
    /** TBT bookkeeping at every token emission. */
    void recordToken(Request *request, RunReport &report);
    /** Execute one composed iteration (decodes + prefill chunks). */
    void runIteration(const IterationPlan &plan, RunReport &report);
    /** Decode-only plan over the whole running set (microbenches);
     *  rebuilt into the reusable plan_ scratch. */
    const IterationPlan &decodePlan();
    static i64 maxBlocksIn(const std::vector<Request *> &requests,
                           i64 block_size);
    static i64 totalBlocksIn(const std::vector<Request *> &requests,
                             i64 block_size);

#if VATTN_AUDIT
    /** Per-iteration hook: serving-layer audit + state-machine
     *  reachability every iteration, full cross-layer backend audit
     *  on a warmup + stride schedule; panics on violation. */
    void auditTick();
    /** Unconditional full audit of the final state; panics. */
    void auditFinal() const;

    /** Full backend audits run every iteration this long... */
    static constexpr u64 kAuditWarmupIters = 64;
    /** ...then every Nth iteration (O(KV state) each, so every
     *  iteration on a long large-batch run is quadratic). */
    static constexpr u64 kAuditStride = 32;
#endif

    EngineConfig config_;
    perf::KernelModel kernel_;
    perf::OverheadModel overhead_;
    std::unique_ptr<MemoryBackend> backend_;
    VAttentionBackend *vattn_backend_ = nullptr; ///< owned by backend_
    Scheduler scheduler_;
    BatchComposer composer_;
    SimClock clock_;
    std::vector<Request *> running_; ///< admission order
    i64 block_size_ = 0;             ///< paged back-ends only

    // ---- Incremental-run state (beginRun/stepRun/endRun) -------------
    std::vector<Request> trace_; ///< requests owned for the active run
    sim::EventQueue<Request *> arrivals_;
    RunReport run_report_;
    std::size_t run_total_ = 0;
    std::size_t run_finished_ = 0;
    /** Admission gate handed to the composer; built once so the hot
     *  path never constructs a std::function. */
    Scheduler::CanAdmit can_admit_;

    // ---- Online-session state ----------------------------------------
    /** Requests owned by an online session: a deque for stable
     *  addresses (the arrival queue and scheduler hold pointers) with
     *  terminal requests popped off the front (bounded memory). */
    std::deque<Request> owned_;
    bool online_open_ = false;
    /** Newest submitted arrival time (monotone-submission contract). */
    TimeNs last_submit_ns_ = 0;
    /** Total TBT samples the submissions so far could emit (the
     *  online sample-store reservation target). */
    std::size_t online_tbt_target_ = 0;

    // ---- Reusable per-iteration scratch ------------------------------
    // clear()-not-reallocate: after the high-water batch shape has
    // been seen, a steady-state iteration performs no heap
    // allocations (asserted by the allocation-regression tests).
    IterationPlan plan_;
    ActiveLens active_lens_;
    std::vector<const PrefillChunk *> iter_prefills_;
    std::vector<Request *> iter_decodes_;
    std::vector<i64> iter_kv_lens_;
    std::vector<Request *> iter_finished_;
#if VATTN_AUDIT
    /** Last audited state per request id (reachability tracking). */
    std::unordered_map<u64, Request::State> audit_last_state_;
    /** Iterations audited since the run started (stride schedule). */
    u64 audit_iter_ = 0;
#endif
};

} // namespace vattn::serving

#endif // VATTN_SERVING_ENGINE_HH
