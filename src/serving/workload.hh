/**
 * @file
 * Synthetic workload traces matched to the published statistics of the
 * paper's evaluation datasets (we do not have the original traces):
 *
 *  - arXiv-Summarization offline (§7.3): 427 requests, total context
 *    64K-192K tokens, 17-5153 output tokens, mean P:D ratio 356.
 *  - arXiv-Summarization online (§7.4): 512 requests, input 22K-45K
 *    (mean 29K), 6-3250 decode tokens (mean 348), Poisson arrivals.
 *  - OpenChat-like dynamic chat trace (§7.6.3): short mixed prompts at
 *    7 queries per second, used for the max-batch-size study.
 *  - ShareGPT-style conversational trace: short prompts, long-form
 *    decodes; the TBT-dominated regime of the hybrid-batching bench.
 *
 * All generators are deterministic given the seed.
 */

#ifndef VATTN_SERVING_WORKLOAD_HH
#define VATTN_SERVING_WORKLOAD_HH

#include <vector>

#include "common/rng.hh"
#include "serving/request.hh"

namespace vattn::serving
{

/** Aggregate statistics of a trace (for tests and reports). */
struct TraceStats
{
    i64 num_requests = 0;
    i64 min_prompt = 0;
    i64 max_prompt = 0;
    double mean_prompt = 0;
    i64 min_decode = 0;
    i64 max_decode = 0;
    double mean_decode = 0;
    double mean_pd_ratio = 0; ///< prompt:decode token ratio
    /** Coefficient of variation of the sorted inter-arrival gaps:
     *  ~1 for a Poisson process, >1 for bursty arrivals, 0 when the
     *  trace has no arrival times assigned. */
    double arrival_cv = 0;
};

TraceStats computeStats(const std::vector<Request> &trace);

/** §7.3 offline long-context summarization trace. */
std::vector<Request> arxivOfflineTrace(int n = 427, u64 seed = 1);

/** §7.4 online summarization trace (arrivals not yet assigned). */
std::vector<Request> arxivOnlineTrace(int n = 512, u64 seed = 2);

/** §7.6.3 chat-style short-context trace. */
std::vector<Request> openChatTrace(int n = 2000, u64 seed = 3);

/**
 * ShareGPT-style conversational trace: mostly short prompts (a few
 * hundred tokens, occasionally a pasted document) with long-form
 * decodes that often exceed the prompt (mean P:D ratio below ~1.5).
 * The regime where time-between-tokens dominates user experience,
 * used by the hybrid-batching TBT bench for scenario diversity.
 */
std::vector<Request> shareGptTrace(int n = 1000, u64 seed = 4);

/**
 * Multi-tenant shared-system-prompt trace (the §8.1 KV de-duplication
 * scenario): @p tenants tenants each own a fixed @p system_tokens-token
 * system prompt (few-shot template / tool instructions); every request
 * is one tenant's system prompt followed by a unique user suffix of
 * ~@p user_mean tokens, with chat-sized decodes. Unlike the other
 * generators this one emits REAL token ids (Request::token_ids), which
 * is what prefix caching keys on — requests of the same tenant share a
 * long common token prefix, requests of different tenants share none.
 */
std::vector<Request> sharedSystemPromptTrace(int n = 256,
                                             int tenants = 8,
                                             i64 system_tokens = 8192,
                                             i64 user_mean = 512,
                                             u64 seed = 9);

/**
 * Long-context trace for the sliding-window geometry study: prompts
 * log-normally spread over [@p min_prompt, @p max_prompt] (default
 * 32K-128K, the regime where windowed layers evict most of their KV)
 * with chat-sized decodes. Deterministic given the seed.
 */
std::vector<Request> longContextTrace(int n = 64,
                                      i64 min_prompt = 32 * 1024,
                                      i64 max_prompt = 128 * 1024,
                                      u64 seed = 11);

/**
 * Skewed multi-tenant online trace, arrivals included: background
 * tenants offer conversational chat load that breathes with a
 * diurnal cycle (assignDiurnalArrivals), while one hot tenant fires
 * @p hot_fraction of the requests in tight bursts — clumps of 4-32
 * requests landing within a fraction of a second, dropped anywhere in
 * the day. The bursts are what static routing cannot see coming: a
 * whole clump lands on whichever replica the estimate model liked at
 * that instant, while live routing spreads it. Requests are returned
 * sorted by arrival time (the submission order the online path
 * requires); ids are positional after the sort.
 */
std::vector<Request> skewedTenantOnlineTrace(int n,
                                             double hot_fraction = 0.4,
                                             double mean_qps = 2.0,
                                             double period_s = 60.0,
                                             u64 seed = 17);

/** Assign Poisson arrival times at @p qps queries/second. */
void assignPoissonArrivals(std::vector<Request> &trace, double qps,
                           u64 seed = 7);

/** Mark every request as arriving at t=0 (offline scenario). */
void assignOfflineArrivals(std::vector<Request> &trace);

/**
 * Assign bursty diurnal arrival times: a Poisson process whose rate
 * swings sinusoidally between (1 - @p depth) and (1 + @p depth) times
 * @p mean_qps over each @p period_s-second "day". Peak hours pack
 * requests into bursts while the troughs leave long idle gaps — the
 * workload shape where an event-driven simulation core pays off (the
 * engines jump over the gaps instead of iterating through them).
 * Thinning (Lewis & Shedler) keeps the process exact.
 */
void assignDiurnalArrivals(std::vector<Request> &trace, double mean_qps,
                           double period_s, double depth = 0.9,
                           u64 seed = 13);

} // namespace vattn::serving

#endif // VATTN_SERVING_WORKLOAD_HH
