/**
 * @file
 * Run reports: request-level latency distributions (Figure 10),
 * throughput aggregates (Figures 8-9, 11) and optional per-iteration
 * traces (Figure 12's latency-spike ablation).
 */

#ifndef VATTN_SERVING_METRICS_HH
#define VATTN_SERVING_METRICS_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "serving/request.hh"

namespace vattn::serving
{

/** One engine iteration, for ablation plots. Under hybrid batching an
 *  iteration may mix decode requests with prefill chunks; the
 *  prefill/decode split fields tell the composition apart. */
struct IterationRecord
{
    TimeNs start_ns = 0;
    TimeNs duration_ns = 0;
    /** Pure prefill iteration (no decodes rode along). */
    bool is_prefill = false;
    i64 batch = 0;
    TimeNs mem_critical_ns = 0; ///< synchronous allocation latency
    i64 groups_mapped = 0;
    i64 prefill_chunk_tokens = 0; ///< query tokens across prefill chunks
    i64 num_prefill_chunks = 0;
    i64 decode_batch = 0; ///< decode requests that emitted a token
    /** Interconnect time on this iteration's critical path (the
     *  all-reduce cost at TP > 1, minus any overlapped portion). */
    TimeNs comm_ns = 0;
};

/** Result of one engine run. */
struct RunReport
{
    i64 num_requests = 0;
    TimeNs makespan_ns = 0;
    /** Virtual time spent inside iterations (makespan minus idle
     *  gaps waiting for arrivals). */
    TimeNs busy_ns = 0;
    i64 prompt_tokens = 0;
    i64 decode_tokens = 0;
    i64 decode_iterations = 0;
    i64 prefill_iterations = 0;
    /** Hybrid iterations carrying both decodes and prefill chunks
     *  (kStallFreeChunked only). */
    i64 mixed_iterations = 0;
    /** Preemption events during the run, counted when they happen
     *  (not via per-request totals: that would double-count, and
     *  would miss requests that never finish). Swap preemptions count
     *  here too (they are preemption events; swap_outs tells them
     *  apart from recomputations). */
    u64 preemptions = 0;
    i64 peak_batch = 0;
    /** Tensor-parallel interconnect time accumulated on iteration
     *  critical paths (2 all-reduces per layer at TP > 1; 0 at TP=1).
     *  A subset of busy_ns — the comm share of an engine's time is
     *  comm_ns / busy_ns. */
    TimeNs comm_ns = 0;

    // ---- Host-memory swap tier (all zero under kRecompute) ---------
    /** Preemptions resolved by swapping the victim's KV to host. */
    u64 swap_outs = 0;
    /** Swapped requests brought back to the device. */
    u64 swap_ins = 0;
    /** KV bytes moved device -> host. */
    u64 swap_out_bytes = 0;
    /** KV bytes moved host -> device. */
    u64 swap_in_bytes = 0;
    /** Synchronous time the engine stalled on swap traffic (copies
     *  plus remap/unmap driver work, both directions). */
    TimeNs swap_stall_ns = 0;
    /** Requests permanently rejected because their KV demand can
     *  never fit the budget (graceful per-request failure instead of
     *  an engine panic). Never counted in the request-level
     *  latency/TTFT/normalized percentiles; TBT samples a dropped
     *  request emitted before failing remain (they measured real
     *  served tokens). */
    i64 dropped_requests = 0;

    // ---- Online serving / SLOs (all zero for offline traces) ------
    /** Terminated requests that carried a TTFT or TBT deadline (the
     *  goodput denominator: finished, dropped and shed alike). */
    i64 slo_requests = 0;
    /** SLO-carrying requests that finished with every deadline met
     *  (the goodput numerator). */
    i64 slo_met_requests = 0;
    /** Finished requests whose first token missed its TTFT deadline. */
    i64 slo_violations_ttft = 0;
    /** Finished requests with at least one inter-token gap over the
     *  TBT deadline (user-visible gaps: swap stalls count). */
    i64 slo_violations_tbt = 0;
    /** Requests rejected at admission because their TTFT deadline was
     *  already impossible (deadline-aware shedding; disjoint from
     *  dropped_requests). */
    i64 shed_requests = 0;
    /** Requests this replica adopted from another replica. */
    u64 migrations_in = 0;
    /** Requests this replica handed off to another replica. */
    u64 migrations_out = 0;

    // ---- §8.1 prefix caching (all zero when disabled) --------------
    /** Slot allocations that consulted the prefix cache. */
    i64 prefix_lookups = 0;
    /** Allocations that inherited at least one cached token. */
    i64 prefix_hits = 0;
    /** Prompt tokens served from the cache instead of prefilled. */
    i64 prefill_tokens_saved = 0;
    /** Cumulative bytes shared across requests (aliased page-groups /
     *  refcounted blocks). */
    u64 prefix_aliased_bytes = 0;
    /** Cumulative bytes of partial trailing groups copied on hits. */
    u64 prefix_copied_bytes = 0;

    /** End-to-end request latency in seconds (arrival -> finish). */
    Percentiles latency_s;
    /** Time to first token in seconds. */
    Percentiles ttft_s;
    /** Time between consecutive output tokens in seconds, sampled at
     *  every token emission after a request's first (within one
     *  computation epoch: preemption restarts the chain). */
    Percentiles tbt_s;
    /** Per-request end-to-end latency divided by its decode tokens,
     *  in seconds per token (the paper's normalized latency). */
    Percentiles normalized_latency_s;

    /** Only filled when EngineConfig::record_iterations is set. */
    std::vector<IterationRecord> iterations;

    double requestsPerMinute() const;
    double decodeTokensPerSecond() const;
    double prefillTokensPerSecond() const;
    /** Prefix-cache hit rate over lookups (0 when caching is off). */
    double prefixHitRate() const;
    /** Fraction of prompt tokens served from the prefix cache. */
    double prefillSavedFraction() const;
    /** Fraction of SLO-carrying requests that met every deadline
     *  (0 when the trace carried no deadlines). */
    double goodput() const;

    /** Accumulate a finished request's timestamps. */
    void addRequest(const Request &request);
    /** Accumulate a request that terminated unserved (dropped or
     *  shed): it joins the goodput denominator but no percentile. */
    void addRejected(const Request &request);
};

} // namespace vattn::serving

#endif // VATTN_SERVING_METRICS_HH
