/**
 * @file
 * Run reports: request-level latency distributions (Figure 10),
 * throughput aggregates (Figures 8-9, 11) and optional per-iteration
 * traces (Figure 12's latency-spike ablation).
 */

#ifndef VATTN_SERVING_METRICS_HH
#define VATTN_SERVING_METRICS_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "serving/request.hh"

namespace vattn::serving
{

/** One engine iteration, for ablation plots. Under hybrid batching an
 *  iteration may mix decode requests with prefill chunks; the
 *  prefill/decode split fields tell the composition apart. */
struct IterationRecord
{
    TimeNs start_ns = 0;
    TimeNs duration_ns = 0;
    /** Pure prefill iteration (no decodes rode along). */
    bool is_prefill = false;
    i64 batch = 0;
    TimeNs mem_critical_ns = 0; ///< synchronous allocation latency
    i64 groups_mapped = 0;
    i64 prefill_chunk_tokens = 0; ///< query tokens across prefill chunks
    i64 num_prefill_chunks = 0;
    i64 decode_batch = 0; ///< decode requests that emitted a token
};

/** Result of one engine run. */
struct RunReport
{
    i64 num_requests = 0;
    TimeNs makespan_ns = 0;
    /** Virtual time spent inside iterations (makespan minus idle
     *  gaps waiting for arrivals). */
    TimeNs busy_ns = 0;
    i64 prompt_tokens = 0;
    i64 decode_tokens = 0;
    i64 decode_iterations = 0;
    i64 prefill_iterations = 0;
    /** Hybrid iterations carrying both decodes and prefill chunks
     *  (kStallFreeChunked only). */
    i64 mixed_iterations = 0;
    /** Preemption events during the run, counted when they happen
     *  (not via per-request totals: that would double-count, and
     *  would miss requests that never finish). */
    u64 preemptions = 0;
    i64 peak_batch = 0;

    // ---- §8.1 prefix caching (all zero when disabled) --------------
    /** Slot allocations that consulted the prefix cache. */
    i64 prefix_lookups = 0;
    /** Allocations that inherited at least one cached token. */
    i64 prefix_hits = 0;
    /** Prompt tokens served from the cache instead of prefilled. */
    i64 prefill_tokens_saved = 0;
    /** Cumulative bytes shared across requests (aliased page-groups /
     *  refcounted blocks). */
    u64 prefix_aliased_bytes = 0;
    /** Cumulative bytes of partial trailing groups copied on hits. */
    u64 prefix_copied_bytes = 0;

    /** End-to-end request latency in seconds (arrival -> finish). */
    Percentiles latency_s;
    /** Time to first token in seconds. */
    Percentiles ttft_s;
    /** Time between consecutive output tokens in seconds, sampled at
     *  every token emission after a request's first (within one
     *  computation epoch: preemption restarts the chain). */
    Percentiles tbt_s;
    /** Per-request end-to-end latency divided by its decode tokens,
     *  in seconds per token (the paper's normalized latency). */
    Percentiles normalized_latency_s;

    /** Only filled when EngineConfig::record_iterations is set. */
    std::vector<IterationRecord> iterations;

    double requestsPerMinute() const;
    double decodeTokensPerSecond() const;
    double prefillTokensPerSecond() const;
    /** Prefix-cache hit rate over lookups (0 when caching is off). */
    double prefixHitRate() const;
    /** Fraction of prompt tokens served from the prefix cache. */
    double prefillSavedFraction() const;

    /** Accumulate a finished request's timestamps. */
    void addRequest(const Request &request);
};

} // namespace vattn::serving

#endif // VATTN_SERVING_METRICS_HH
