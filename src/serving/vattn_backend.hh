/**
 * @file
 * The vAttention memory backend: owns a simulated GPU device, a VMM
 * driver instance and the core::VAttention runtime, and adapts them to
 * the engine's MemoryBackend interface. ensure() forwards to the
 * Table-4 step() API; computeWindow() drives the background-allocation
 * model (§6.1.1).
 */

#ifndef VATTN_SERVING_VATTN_BACKEND_HH
#define VATTN_SERVING_VATTN_BACKEND_HH

#include <memory>

#include "core/vattention.hh"
#include "cuvmm/driver.hh"
#include "gpu/device.hh"
#include "perf/model_spec.hh"
#include "serving/memory_backend.hh"

namespace vattn::serving
{

/** vAttention-managed KV backend (the paper's system). */
class VAttentionBackend : public MemoryBackend
{
  public:
    struct Options
    {
        PageGroup page_group = PageGroup::k2MB;
        bool tensor_slicing = false;
        bool deferred_reclamation = true;
        bool eager_allocation = true;
        bool overlap_allocation = true;
        int max_batch_size = 256;
        /** §8.1 prefix caching: cached slots become a content-hashed
         *  prefix store; hits alias physical page-groups into the new
         *  request's virtual tensors. Requires deferred reclamation
         *  for cross-lifetime reuse (live-to-live sharing works
         *  regardless). */
        bool enable_prefix_caching = false;
        /** Pinned host bytes for the KV swap tier (0 = no tier; the
         *  engine must preempt with recomputation). */
        u64 host_swap_bytes = 0;
    };

    /**
     * @param model model architecture
     * @param tp tensor-parallel degree (one worker is simulated; all
     *        workers behave identically, §5.3)
     * @param budget_bytes per-worker physical KV budget
     */
    VAttentionBackend(const perf::ModelSpec &model, int tp,
                      u64 budget_bytes);
    VAttentionBackend(const perf::ModelSpec &model, int tp,
                      u64 budget_bytes, Options options);

    bool canAdmit(i64 uncached_tokens) const override;
    Result<int> allocSlot() override;
    bool prefixCachingEnabled() const override
    {
        return prefix_caching_;
    }
    i64 matchPrefix(const PrefixKey &key) const override;
    Result<SlotLease> allocSlot(const PrefixKey &key,
                                i64 max_cached) override;
    void registerPrefix(int slot, const PrefixKey &key,
                        i64 tokens) override;
    BackendPrefixStats prefixStats() const override;
    void freeSlot(int slot) override;
    Result<TimeNs> ensure(const ActiveLens &active) override;
    void computeWindow(TimeNs window_ns) override;
    u64 bytesInUse() const override;
    u64 budgetBytes() const override;
    /** Whole-stack audit of driver + pool + allocator + runtime. */
    void auditInto(audit::AuditReport &report) const override
    {
        runtime_->auditInto(report);
    }

    bool supportsSwap() const override;
    bool canSwapOut(int slot) const override;
    bool canSwapIn(int slot) const override;
    Result<SwapResult> swapOut(int slot) override;
    Result<SwapResult> swapIn(int slot) override;
    u64 slotPhysBytes(int slot) const override;

    core::VAttention &runtime() { return *runtime_; }
    const core::VAttention &runtime() const { return *runtime_; }
    cuvmm::Driver &driver() { return *driver_; }
    gpu::GpuDevice &device() { return *device_; }

    /** Result of the most recent ensure() (for iteration traces). */
    const core::StepStats &lastStep() const { return last_step_; }

  private:
    /** Group-granularity hash query over a request's token ids. */
    core::PrefixQuery buildQuery(const PrefixKey &key) const;

    std::unique_ptr<gpu::GpuDevice> device_;
    std::unique_ptr<cuvmm::Driver> driver_;
    std::unique_ptr<core::VAttention> runtime_;
    std::vector<i64> seq_lens_;
    core::StepStats last_step_;
    bool prefix_caching_ = false;
    /** Driver time spent by failed swap-in attempts, charged to the
     *  next ensure() (error results cannot carry latency). */
    TimeNs failed_swap_ns_ = 0;
};

} // namespace vattn::serving

#endif // VATTN_SERVING_VATTN_BACKEND_HH
