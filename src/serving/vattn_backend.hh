/**
 * @file
 * The vAttention memory backend: owns a lockstep core::WorkerGroup —
 * one simulated GPU, VMM driver and core::VAttention runtime per
 * tensor-parallel worker, each holding a num_kv_heads/tp KV shard
 * (§5.3) — and adapts it to the engine's MemoryBackend interface.
 * ensure() forwards to the Table-4 step() API on every worker;
 * computeWindow() drives the background-allocation model (§6.1.1).
 * Symmetric queries are answered by worker 0; the audit layer's
 * cross-worker state-equality check verifies that symmetry.
 */

#ifndef VATTN_SERVING_VATTN_BACKEND_HH
#define VATTN_SERVING_VATTN_BACKEND_HH

#include <memory>

#include "core/worker_group.hh"
#include "cuvmm/driver.hh"
#include "perf/model_spec.hh"
#include "serving/memory_backend.hh"

namespace vattn::serving
{

/** vAttention-managed KV backend (the paper's system). */
class VAttentionBackend : public MemoryBackend
{
  public:
    struct Options
    {
        PageGroup page_group = PageGroup::k2MB;
        bool tensor_slicing = false;
        bool deferred_reclamation = true;
        bool eager_allocation = true;
        bool overlap_allocation = true;
        int max_batch_size = 256;
        /** §8.1 prefix caching: cached slots become a content-hashed
         *  prefix store; hits alias physical page-groups into the new
         *  request's virtual tensors. Requires deferred reclamation
         *  for cross-lifetime reuse (live-to-live sharing works
         *  regardless). */
        bool enable_prefix_caching = false;
        /** Pinned host bytes for the KV swap tier (0 = no tier; the
         *  engine must preempt with recomputation). Per worker. */
        u64 host_swap_bytes = 0;
    };

    /**
     * @param model model architecture
     * @param tp tensor-parallel degree: one lockstep worker per rank,
     *        each with num_kv_heads/tp heads (§5.3)
     * @param budget_bytes per-worker physical KV budget
     */
    VAttentionBackend(const perf::ModelSpec &model, int tp,
                      u64 budget_bytes);
    VAttentionBackend(const perf::ModelSpec &model, int tp,
                      u64 budget_bytes, Options options);

    bool canAdmit(i64 uncached_tokens) const override;
    Result<int> allocSlot() override;
    bool prefixCachingEnabled() const override
    {
        return prefix_caching_;
    }
    i64 matchPrefix(const PrefixKey &key) const override;
    Result<SlotLease> allocSlot(const PrefixKey &key,
                                i64 max_cached) override;
    void registerPrefix(int slot, const PrefixKey &key,
                        i64 tokens) override;
    BackendPrefixStats prefixStats() const override;
    void freeSlot(int slot) override;
    Result<TimeNs> ensure(const ActiveLens &active) override;
    void computeWindow(TimeNs window_ns) override;
    u64 bytesInUse() const override;
    u64 budgetBytes() const override;
    /** Whole-stack audit of every worker (driver + pool + allocator +
     *  runtime) plus the cross-worker lockstep-equality check. */
    void auditInto(audit::AuditReport &report) const override
    {
        group_->auditInto(report);
    }

    bool supportsSwap() const override;
    bool canSwapOut(int slot) const override;
    bool canSwapIn(int slot) const override;
    Result<SwapResult> swapOut(int slot) override;
    Result<SwapResult> swapIn(int slot) override;
    u64 slotPhysBytes(int slot) const override;

    bool supportsKvExport() const override { return supportsSwap(); }
    Result<SwappedKvImage> exportSwapped(int slot) override;
    bool canImportSwapped(const SwappedKvImage &image) const override;
    Result<int> importSwapped(const SwappedKvImage &image) override;

    /** The lockstep TP worker group backing this replica. */
    core::WorkerGroup &workerGroup() { return *group_; }
    const core::WorkerGroup &workerGroup() const { return *group_; }

    /** Worker 0's runtime/driver (workers are symmetric; the
     *  historical single-worker accessors for tests and benches). */
    core::VAttention &runtime() { return group_->worker(0); }
    const core::VAttention &runtime() const { return group_->worker(0); }
    cuvmm::Driver &driver() { return group_->driver(0); }

    /** Install the PCIe copy-cost parameters on EVERY worker's driver
     *  (swap copies run on all shards concurrently). */
    void setCopyModel(const cuvmm::LatencyModel::CopyModel &model);

    /** Result of the most recent ensure() (for iteration traces). */
    const core::StepStats &lastStep() const { return last_step_; }

  private:
    /** Group-granularity hash query over a request's token ids. */
    core::PrefixQuery buildQuery(const PrefixKey &key) const;

    std::unique_ptr<core::WorkerGroup> group_;
    std::vector<i64> seq_lens_;
    core::StepStats last_step_;
    bool prefix_caching_ = false;
    /** Driver time spent by failed swap-in attempts, charged to the
     *  next ensure() (error results cannot carry latency). */
    TimeNs failed_swap_ns_ = 0;
};

} // namespace vattn::serving

#endif // VATTN_SERVING_VATTN_BACKEND_HH
