/**
 * @file
 * The memory-management interface the serving engine programs against.
 * Two implementations reproduce the paper's comparison:
 *
 *  - PagedBackend     : user-space block management (vLLM model; the
 *    whole KV region is committed up-front, blocks are CPU-side
 *    bookkeeping, so ensure() never pays driver latency).
 *  - VAttentionBackend: the paper's system — physical memory is
 *    committed page-group by page-group through the (simulated) CUDA
 *    VMM driver, with latency hidden by the §6.1 optimizations.
 */

#ifndef VATTN_SERVING_MEMORY_BACKEND_HH
#define VATTN_SERVING_MEMORY_BACKEND_HH

#include <utility>
#include <vector>

#include "common/status.hh"
#include "common/types.hh"

namespace vattn::serving
{

/** (slot, context length) pairs for the active batch. */
using ActiveLens = std::vector<std::pair<int, i64>>;

/** KV memory manager abstraction used by the engine. */
class MemoryBackend
{
  public:
    virtual ~MemoryBackend() = default;

    /** Could a request with this prompt be admitted right now? */
    virtual bool canAdmit(i64 prompt_tokens) const = 0;

    /** Lease a slot for a new request. */
    virtual Result<int> allocSlot() = 0;

    /** Release a slot (completion or preemption). */
    virtual void freeSlot(int slot) = 0;

    /**
     * Ensure KV backing for the given active lengths before an
     * iteration; returns the critical-path allocation latency.
     * kOutOfMemory means the engine must preempt and retry.
     */
    virtual Result<TimeNs> ensure(const ActiveLens &active) = 0;

    /** Grant the backend the iteration's compute window for
     *  background work (no-op for the paged backend). */
    virtual void computeWindow(TimeNs window_ns) = 0;

    /** Physical KV bytes currently committed to live requests. */
    virtual u64 bytesInUse() const = 0;
    /** Total KV bytes this backend may use. */
    virtual u64 budgetBytes() const = 0;
};

} // namespace vattn::serving

#endif // VATTN_SERVING_MEMORY_BACKEND_HH
