/**
 * @file
 * The memory-management interface the serving engine programs against.
 * Two implementations reproduce the paper's comparison:
 *
 *  - PagedBackend     : user-space block management (vLLM model; the
 *    whole KV region is committed up-front, blocks are CPU-side
 *    bookkeeping, so ensure() never pays driver latency).
 *  - VAttentionBackend: the paper's system — physical memory is
 *    committed page-group by page-group through the (simulated) CUDA
 *    VMM driver, with latency hidden by the §6.1 optimizations.
 */

#ifndef VATTN_SERVING_MEMORY_BACKEND_HH
#define VATTN_SERVING_MEMORY_BACKEND_HH

#include <utility>
#include <vector>

#include "common/audit.hh"
#include "common/prefix_hash.hh"
#include "common/status.hh"
#include "common/types.hh"

namespace vattn::serving
{

/** (slot, context length) pairs for the active batch. */
using ActiveLens = std::vector<std::pair<int, i64>>;

/** Result of a prefix-aware slot allocation. */
struct SlotLease
{
    int slot = -1;
    /** Prompt tokens whose KV the request inherits from the prefix
     *  cache (prefill starts at this offset). */
    i64 cached_tokens = 0;
    /** Critical-path latency of establishing the reuse (aliasing
     *  driver calls; 0 for CPU-side block sharing). */
    TimeNs alloc_ns = 0;
};

/** Cumulative prefix-cache counters of one backend. */
struct BackendPrefixStats
{
    /** Bytes mapped into more than one request's virtual range
     *  (vAttention aliasing) or shared via block refcounts (paged). */
    u64 aliased_bytes = 0;
    /** Bytes of partial trailing groups copied on hits. */
    u64 copied_bytes = 0;
};

/** Outcome of one slot swap (out or in). */
struct SwapResult
{
    /** KV bytes moved over PCIe. */
    u64 bytes = 0;
    /** Synchronous latency of the swap (copies plus any driver
     *  map/unmap work) — the engine's swap-stall time. */
    TimeNs stall_ns = 0;
};

/**
 * A swapped-out request's host-tier KV image, detached from the donor
 * backend so another replica of identical geometry can re-adopt it
 * (cross-replica migration over the host tier). Each backend family
 * fills its own fields; the rest stay empty. The image carries
 * layout/bookkeeping only — the simulated KV payload lives in host
 * memory, which replicas on one node share, so the handover itself is
 * modeled zero-copy: the donor paid the device->host copy at swap-out,
 * the adopter pays host->device at swap-in.
 */
struct SwappedKvImage
{
    /** Total KV bytes parked on the host tier. */
    u64 bytes = 0;

    // ---- vAttention backends: per-KV-buffer page runs --------------
    /** First live page-group per buffer ([lead, lead+size)). */
    std::vector<i64> buffer_leads;
    /** Live host pages per buffer. */
    std::vector<i64> buffer_sizes;
    /** Allocation frontier in groups (restores the virtual layout). */
    i64 group_frontier = 0;
    /** Total live page-groups across buffers. */
    i64 handles = 0;

    // ---- Paged backends: per-layer-group CPU block runs ------------
    /** Host blocks held per layer group. */
    std::vector<i64> group_blocks;
    /** Dead-lead boundary per layer group (sliding windows: blocks
     *  before the lead were trimmed and never swap back). */
    std::vector<i64> group_leads;

    bool empty() const { return bytes == 0; }
};

/** KV memory manager abstraction used by the engine. */
class MemoryBackend
{
  public:
    virtual ~MemoryBackend() = default;

    /** Could a request needing @p uncached_tokens fresh prompt tokens
     *  of KV be admitted right now? (The engine discounts prefix-cache
     *  matches before asking.) */
    virtual bool canAdmit(i64 uncached_tokens) const = 0;

    /** Lease a slot for a new request. */
    virtual Result<int> allocSlot() = 0;

    // ---- Prefix caching (optional capability, §8.1) -----------------

    /** Does this backend run with prefix caching enabled? */
    virtual bool prefixCachingEnabled() const { return false; }

    /** Longest cached prefix (in tokens) matching @p key. */
    virtual i64
    matchPrefix(const PrefixKey &key) const
    {
        (void)key;
        return 0;
    }

    /**
     * Prefix-aware allocSlot: reuse up to @p max_cached tokens of a
     * cached matching prefix. Backends without the capability fall
     * back to a plain allocSlot with nothing cached.
     */
    virtual Result<SlotLease>
    allocSlot(const PrefixKey &key, i64 max_cached)
    {
        (void)key;
        (void)max_cached;
        auto slot = allocSlot();
        if (!slot.isOk()) {
            return Result<SlotLease>(slot.status());
        }
        return SlotLease{slot.value(), 0, 0};
    }

    /**
     * Record that @p slot now holds the KV of the first @p tokens
     * tokens of @p key (called as prefill chunks complete, so
     * concurrent requests can share as early as possible).
     */
    virtual void
    registerPrefix(int slot, const PrefixKey &key, i64 tokens)
    {
        (void)slot;
        (void)key;
        (void)tokens;
    }

    /** Cumulative sharing counters (reports/benches). */
    virtual BackendPrefixStats prefixStats() const { return {}; }

    // ---- Host-memory swap tier (optional capability) ----------------
    //
    // Preemption-by-swap: a victim's KV moves to host memory and back
    // instead of being recomputed. The slot stays leased for the whole
    // cycle (vAttention keeps the virtual layout mapped-out-but-intact;
    // paged keeps the slot's bookkeeping with CPU block ids), so
    // swap-in resumes the request exactly where it stopped.

    /** Does this backend have a host tier to swap to? */
    virtual bool supportsSwap() const { return false; }

    /** Could swapOut(slot) succeed right now? False in particular
     *  while any of the slot's pages/blocks are shared with another
     *  request (prefix aliasing) — those must stay resident. */
    virtual bool canSwapOut(int slot) const
    {
        (void)slot;
        return false;
    }

    /** Could swapIn(slot) succeed right now (device capacity)? */
    virtual bool canSwapIn(int slot) const
    {
        (void)slot;
        return false;
    }

    /** Move the slot's KV to the host tier, freeing device memory. */
    virtual Result<SwapResult>
    swapOut(int slot)
    {
        (void)slot;
        return Result<SwapResult>(ErrorCode::kUnimplemented,
                                  "backend has no swap tier");
    }

    /** Bring a swapped-out slot's KV back to the device. */
    virtual Result<SwapResult>
    swapIn(int slot)
    {
        (void)slot;
        return Result<SwapResult>(ErrorCode::kUnimplemented,
                                  "backend has no swap tier");
    }

    /** Physical KV bytes a live slot currently occupies on the device
     *  (the cost model's estimate of what a swap would move). */
    virtual u64 slotPhysBytes(int slot) const
    {
        (void)slot;
        return 0;
    }

    // ---- Cross-replica migration (optional capability) --------------
    //
    // A swapped-out slot's host-tier KV image can be exported —
    // detaching it from this backend and freeing the slot — and
    // imported into another backend of identical geometry, which
    // leases a fresh slot holding the image in swapped state. The
    // regular swapIn() then resumes the request on the adopter.

    /** Can this backend export/import swapped KV images? */
    virtual bool supportsKvExport() const { return false; }

    /** Detach a swapped-out slot's host image and free the slot. */
    virtual Result<SwappedKvImage>
    exportSwapped(int slot)
    {
        (void)slot;
        return Result<SwappedKvImage>(ErrorCode::kUnimplemented,
                                      "backend cannot export KV");
    }

    /** Could importSwapped(@p image) succeed right now (free slot +
     *  host-tier capacity on every worker)? */
    virtual bool canImportSwapped(const SwappedKvImage &image) const
    {
        (void)image;
        return false;
    }

    /** Adopt an exported image into a fresh slot (swapped state). */
    virtual Result<int>
    importSwapped(const SwappedKvImage &image)
    {
        (void)image;
        return Result<int>(ErrorCode::kUnimplemented,
                           "backend cannot import KV");
    }

    /** Release a slot (completion or preemption). */
    virtual void freeSlot(int slot) = 0;

    /**
     * Ensure KV backing for the given active lengths before an
     * iteration; returns the critical-path allocation latency.
     * kOutOfMemory means the engine must preempt and retry.
     */
    virtual Result<TimeNs> ensure(const ActiveLens &active) = 0;

    /** Grant the backend the iteration's compute window for
     *  background work (no-op for the paged backend). */
    virtual void computeWindow(TimeNs window_ns) = 0;

    /** Physical KV bytes currently committed to live requests. */
    virtual u64 bytesInUse() const = 0;
    /** Total KV bytes this backend may use. */
    virtual u64 budgetBytes() const = 0;

    /**
     * Re-derive the backend's memory-accounting invariants from first
     * principles and record every violation (common/audit.hh). The
     * engine's VATTN_AUDIT builds call this once per iteration; tests
     * call it after injecting corruption. Default: nothing to audit.
     */
    virtual void auditInto(audit::AuditReport &report) const
    {
        (void)report;
    }
};

} // namespace vattn::serving

#endif // VATTN_SERVING_MEMORY_BACKEND_HH
