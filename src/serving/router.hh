/**
 * @file
 * Cluster-level request router. Arrivals are routed to replicas on the
 * shared virtual arrival timeline *before* any replica simulates, so
 * routing is deterministic regardless of how the replica worker
 * threads interleave. The router keeps its own load model per replica:
 * every routed request occupies its replica until an estimated finish
 * time and holds an estimated KV commitment, both supplied by the
 * caller (the cluster derives them from each replica's kernel model
 * and MemoryBackend budget).
 */

#ifndef VATTN_SERVING_ROUTER_HH
#define VATTN_SERVING_ROUTER_HH

#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace vattn::serving
{

/** How the cluster spreads arrivals across replicas. */
enum class RoutingPolicy
{
    kRoundRobin,        ///< cycle through replicas in index order
    kJoinShortestQueue, ///< fewest in-flight requests wins
    kLeastKvPressure,   ///< lowest KV commitment / budget ratio wins
};

const char *toString(RoutingPolicy policy);

/** All policies, in a stable sweep order (handy for benches/tests). */
constexpr RoutingPolicy kAllRoutingPolicies[] = {
    RoutingPolicy::kRoundRobin,
    RoutingPolicy::kJoinShortestQueue,
    RoutingPolicy::kLeastKvPressure,
};

/** Per-replica load-balancing decision maker. */
class Router
{
  public:
    /** Static description of one replica as the router sees it. */
    struct Replica
    {
        /** Per-worker physical KV budget (MemoryBackend::budgetBytes). */
        u64 kv_budget_bytes = 0;
    };

    /** One arrival's footprint on a specific replica; heterogeneous
     *  replicas give the same request different estimates. */
    struct Estimate
    {
        TimeNs service_ns = 0; ///< queue occupancy until est. finish
        u64 kv_bytes = 0;      ///< est. per-worker KV commitment
    };

    Router(RoutingPolicy policy, std::vector<Replica> replicas);

    /**
     * Route one arrival at @p arrival_ns. The pick uses only the live
     * load model; @p estimate is then invoked once, for the chosen
     * replica, and the returned footprint is absorbed so later
     * decisions observe this request (heterogeneous replicas give the
     * same request different estimates, so the callback takes the
     * replica index). Arrivals must be routed in non-decreasing time
     * order.
     */
    int route(TimeNs arrival_ns,
              const std::function<Estimate(int replica)> &estimate);

    // ---- Live routing (the online serving path) ----------------------
    //
    // The static policies above model load from their own estimates and
    // never look at the replicas. The live mode instead samples each
    // replica's actual state at dispatch time — queue depth, KV
    // pressure, communication share, in-flight prefill debt — so
    // routing reacts to skew the estimate model cannot see (bursty
    // tenants, heterogeneous replicas, migration).

    /** One replica's live state, sampled at dispatch time. */
    struct LiveLoad
    {
        i64 queued = 0;  ///< waiting + swapped-out requests
        i64 running = 0; ///< running batch size
        /** Prompt tokens admitted but not yet prefilled (the work a
         *  new arrival must wait out before its own prefill). */
        i64 prefill_debt_tokens = 0;
        double kv_pressure = 0.0; ///< bytesInUse / budget, [0, 1]
        /** Collective-communication share of recent iteration time
         *  (high share = TP-bound replica, slow to absorb load). */
        double comm_share = 0.0;
        /** Backend cannot admit a typical request right now. */
        bool kv_saturated = false;
    };

    /** Composite badness of one live snapshot (lower is better).
     *  Exposed so tests can pin the ordering. */
    static double liveScore(const LiveLoad &load);

    /**
     * Route one arrival using live replica state: @p load is sampled
     * once per replica and the least-loaded replica wins. The order is
     * lexicographic — an unsaturated replica always beats a saturated
     * one, then lower liveScore, then lower index — so the decision is
     * a pure function of the snapshots (deterministic across runs and
     * execution modes).
     */
    int routeLive(TimeNs arrival_ns,
                  const std::function<LiveLoad(int replica)> &load);

    // ---- Introspection (load model as of the last routed arrival) ----

    int numReplicas() const { return static_cast<int>(states_.size()); }
    RoutingPolicy policy() const { return policy_; }
    /** In-flight (estimated unfinished) requests on @p replica. */
    i64 outstanding(int replica) const;
    /** Estimated committed KV bytes on @p replica. */
    u64 kvBytes(int replica) const;
    /** kvBytes / budget for @p replica, in [0, inf). */
    double kvPressure(int replica) const;

  private:
    struct InFlight
    {
        TimeNs est_finish_ns = 0;
        u64 est_kv_bytes = 0;
    };
    struct ByFinish
    {
        bool
        operator()(const InFlight &a, const InFlight &b) const
        {
            return a.est_finish_ns > b.est_finish_ns; // min-heap
        }
    };
    struct State
    {
        Replica info;
        std::priority_queue<InFlight, std::vector<InFlight>, ByFinish>
            in_flight;
        u64 kv_bytes = 0;
    };

    /** Retire every request whose estimated finish is <= @p now. */
    void drainFinished(TimeNs now);
    int pick() const;

    RoutingPolicy policy_;
    std::vector<State> states_;
    int next_round_robin_ = 0;
    TimeNs last_arrival_ns_ = 0;
};

} // namespace vattn::serving

#endif // VATTN_SERVING_ROUTER_HH
