/**
 * @file
 * Multi-replica serving: a ServingCluster owns N independently
 * configured Engine replicas behind a Router. Requests are routed up
 * front on the shared virtual arrival timeline (see router.hh), then
 * every replica simulates its share — either on its own std::thread
 * worker or cooperatively on one event-driven coordinator that always
 * steps the replica with the earliest pending virtual-time event
 * (ClusterExecution picks; the event loop wins once replicas
 * outnumber hardware threads). The per-replica RunReports merge —
 * iteration records k-way by timestamp, latency samples in replica
 * order — into one ClusterReport. The whole pipeline is
 * deterministic: the same configuration and trace produce an
 * identical merged report no matter which execution mode ran it or
 * how threads interleave.
 */

#ifndef VATTN_SERVING_CLUSTER_HH
#define VATTN_SERVING_CLUSTER_HH

#include <memory>
#include <mutex>
#include <vector>

#include "common/status.hh"
#include "common/thread_annotations.hh"
#include "serving/engine.hh"
#include "serving/metrics.hh"
#include "serving/router.hh"

namespace vattn::serving
{

/** How a cluster run drives its replicas. */
enum class ClusterExecution : u8
{
    /** Event loop once replicas outnumber hardware threads (where
     *  thread churn costs more than it buys), threads otherwise. */
    kAuto,
    /** One std::thread per replica (the historical behaviour). */
    kThreads,
    /** Single-threaded cooperative coordinator: repeatedly steps the
     *  replica with the earliest next virtual-time event. No thread
     *  creation, no context switches — the scalable path for
     *  replica counts far beyond the core count. */
    kEventLoop,
};

const char *toString(ClusterExecution mode);

/** How the online serving path places each arrival on a replica. */
enum class RoutingMode : u8
{
    /** The offline pre-pass policy (Config::policy) applied at
     *  dispatch time, fed by the router's own estimate model — it
     *  never observes the replicas. */
    kStatic,
    /** Router::routeLive over each replica's actual state (queue
     *  depth, KV pressure, comm share, prefill debt) sampled at the
     *  arrival instant. */
    kLive,
};

const char *toString(RoutingMode mode);

/** Online-session knobs (ServingCluster::start). */
struct OnlineOptions
{
    RoutingMode routing = RoutingMode::kStatic;
    /** Rebalance at arrival instants: when one replica is saturated
     *  (or far more loaded) and another is not, one queued-or-swapped
     *  request migrates toward the idle replica (swapped requests
     *  move their KV through the host swap tier). */
    bool migration = false;
    /** Expected session size, a per-replica sample-store reservation
     *  hint (zero is always correct; growth is amortized). */
    std::size_t expected_requests = 0;
};

/** Merged result of one cluster run. */
struct ClusterReport
{
    /** Cross-replica aggregate (counts summed, makespan = max,
     *  percentiles over every request, iterations timestamp-merged). */
    RunReport merged;
    /** Per-replica breakdowns, indexed like the config. */
    std::vector<RunReport> replicas;
    /** Requests routed to each replica (= replicas[i].num_requests). */
    std::vector<i64> assigned;

    // ---- Cross-replica load-imbalance stats -------------------------
    // max/mean ratios: 1.0 is perfectly even, higher is more skewed.

    double request_imbalance = 0; ///< over routed request counts
    double token_imbalance = 0;   ///< over prompt+decode tokens served
    double busy_imbalance = 0;    ///< over per-replica busy (non-idle) time
    /** Jain's fairness index over routed request counts, (0, 1]. */
    double jain_fairness = 1.0;
};

/** N Engine replicas behind a load-balancing router. */
class ServingCluster
{
  public:
    struct Config
    {
        /** One entry per replica; replicas may differ (GPU, TP,
         *  backend, KV budget — "replica skew" scenarios). */
        std::vector<EngineConfig> replicas;
        RoutingPolicy policy = RoutingPolicy::kJoinShortestQueue;
        /** Replica driver (identical reports either way). */
        ClusterExecution execution = ClusterExecution::kAuto;
    };

    /** Convenience: @p n identical replicas of @p engine. */
    static Config uniform(const EngineConfig &engine, int n,
                          RoutingPolicy policy);

    explicit ServingCluster(Config config);

    /** Route @p trace across the replicas and serve it (threads or
     *  event loop per the config). Single-shot: the replicas' virtual
     *  clocks are consumed, so construct a fresh cluster per trace (a
     *  second call panics). */
    ClusterReport run(std::vector<Request> trace);

    /** The driver run() will use (kAuto resolved). */
    ClusterExecution resolvedExecution() const;

    // ---- Online serving (start / submit / shutdown) ------------------
    //
    // The streaming alternative to run(): requests are submitted one
    // at a time as they arrive (any thread), each dispatched to a
    // replica the moment it is submitted — after every replica has
    // simulated up to the arrival instant, so live routing and
    // migration decisions see the cluster as it actually stands at
    // that virtual time. Deterministic like run(): the same submission
    // sequence produces the same merged report in either execution
    // mode (threads and event loop pump identical per-replica work
    // between arrivals; replicas are independent within a window).

    /**
     * Open an online session. Single-shot like run() (and mutually
     * exclusive with it): a cluster serves one trace or one online
     * session in its lifetime.
     */
    void start(const OnlineOptions &options = {}) EXCLUDES(mutex_);

    /**
     * Submit one arrival. Thread-safe; arrivals must be submitted in
     * non-decreasing arrival_ns order (the shared virtual timeline).
     * Errors — submission before start(), after shutdown(), or out of
     * time order — are reported, not panicked: the submission side is
     * the system's untrusted edge.
     */
    Status submit(Request request) EXCLUDES(mutex_);

    /**
     * Drain every replica, close the session and return the merged
     * report (same shape run() produces, plus the online counters:
     * goodput, SLO-violation breakdown, shed and migration counts).
     */
    ClusterReport shutdown() EXCLUDES(mutex_);

    /**
     * The deterministic routing pre-pass used by run(): the replica
     * index chosen for each request of @p trace, in trace order.
     * Exposed so tests and tools can inspect decisions without
     * simulating.
     */
    std::vector<int> routeTrace(const std::vector<Request> &trace) const;

    int numReplicas() const { return static_cast<int>(engines_.size()); }
    Engine &replica(int i) { return *engines_[static_cast<std::size_t>(i)]; }
    const Config &config() const { return config_; }

    /**
     * Live cross-thread run progress, accumulated by the replica
     * worker threads as each finishes its share. Integer sums only, so
     * the totals are identical no matter which order the threads
     * complete in; after run() returns they must equal the merged
     * report's counts (the cross-layer audit checks this).
     */
    struct Progress
    {
        int replicas_finished = 0;
        i64 requests_finished = 0;
        i64 tokens_served = 0; ///< prompt + decode tokens
    };

    /** Snapshot of the shared progress accumulator. Safe to call from
     *  any thread while run() executes on another. */
    Progress progress() const EXCLUDES(mutex_);

  private:
    /** This request's footprint on @p replica's load model. */
    Router::Estimate estimateFor(const Request &request,
                                 int replica) const;

    /** Worker-thread side of the accumulator. */
    void recordReplicaDone(const RunReport &report) EXCLUDES(mutex_);

    /** Simulate every replica's share, one std::thread each. */
    void runThreads(std::vector<std::vector<Request>> &shares,
                    ClusterReport &report);
    /** Simulate every replica's share on one cooperative
     *  event-driven coordinator (earliest virtual event first). */
    void runEventLoop(std::vector<std::vector<Request>> &shares,
                      ClusterReport &report);

    /** Step every replica until its next event is at or past
     *  @p horizon_ns (kNoEventNs drains them completely). Replicas
     *  are independent within the window, so the threads and
     *  event-loop modes produce identical per-replica state. */
    void advanceAllTo(TimeNs horizon_ns) REQUIRES(mutex_);
    /** One rebalance step at an arrival instant: migrate at most one
     *  request from the most- to the least-loaded replica when the
     *  gap warrants it (deterministic, pure function of live state). */
    void maybeMigrate() REQUIRES(mutex_);
    /** Merge per-replica reports into report.merged + imbalance stats
     *  (shared by run() and shutdown()). */
    static void mergeReports(ClusterReport &report);

    Config config_;
    std::vector<std::unique_ptr<Engine>> engines_;

    /** Guards the cross-thread run state below: the single-shot flag
     *  (run() may race itself from different threads), the merge
     *  progress the worker threads write, and the whole online
     *  session (submit serializes replica pumping behind it). */
    mutable std::mutex mutex_;
    bool run_started_ GUARDED_BY(mutex_) = false;
    Progress progress_ GUARDED_BY(mutex_);

    // ---- Online-session state (all behind mutex_) --------------------
    bool online_started_ GUARDED_BY(mutex_) = false;
    bool online_shutdown_ GUARDED_BY(mutex_) = false;
    OnlineOptions online_options_ GUARDED_BY(mutex_);
    std::unique_ptr<Router> online_router_ GUARDED_BY(mutex_);
    TimeNs online_last_arrival_ns_ GUARDED_BY(mutex_) = 0;
    std::vector<i64> online_assigned_ GUARDED_BY(mutex_);
};

} // namespace vattn::serving

#endif // VATTN_SERVING_CLUSTER_HH
