/**
 * @file
 * Serving-layer invariant audit: the request state machine and the
 * consistency of the engine's three request containers (running set,
 * waiting queue, swapped queue). Pure functions over the containers so
 * tests can audit hand-built corrupt states without an engine.
 */

#ifndef VATTN_SERVING_SERVING_AUDIT_HH
#define VATTN_SERVING_SERVING_AUDIT_HH

#include <vector>

#include "common/audit.hh"
#include "serving/request.hh"
#include "serving/scheduler.hh"

namespace vattn::serving
{

const char *toString(Request::State state);

/**
 * Is @p from -> @p to a legal request state transition? The machine:
 *
 *   kPending -> kWaiting                         (arrival)
 *   kWaiting -> kRunning | kDropped | kPending   (admit / reject /
 *                                                 queue teardown)
 *   kRunning -> kWaiting | kSwapped | kFinished | kDropped
 *              (preempt-recompute / preempt-swap / done / over-budget)
 *   kSwapped -> kRunning                         (swap-in)
 *
 * kFinished and kDropped are terminal. Self-transitions are not
 * transitions and return false.
 */
bool isLegalTransition(Request::State from, Request::State to);

/**
 * Is @p to reachable from @p from via zero or more legal transitions?
 * Audits that sample once per engine iteration can observe multi-hop
 * jumps (a request admitted and then preempted inside one iteration
 * goes kWaiting -> kRunning -> kSwapped between two samples), so the
 * per-iteration tracker checks reachability, not single-step legality.
 */
bool isReachableState(Request::State from, Request::State to);

/**
 * Audit queue/state consistency: the three containers are pairwise
 * disjoint; every member's state matches its container (kRunning /
 * kWaiting / kSwapped); running and swapped requests hold a backend
 * slot, waiting ones do not; no two requests share a slot.
 */
void auditServingState(const std::vector<Request *> &running,
                       const Scheduler &scheduler,
                       audit::AuditReport &report);

} // namespace vattn::serving

#endif // VATTN_SERVING_SERVING_AUDIT_HH
