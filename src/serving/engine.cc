#include "serving/engine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "serving/paged_backend.hh"

namespace vattn::serving
{

u64
EngineConfig::kvBudgetPerWorker() const
{
    if (kv_budget_override != 0) {
        return kv_budget_override;
    }
    const double usable =
        gpu_mem_util * static_cast<double>(gpu.mem_bytes);
    const double weights =
        static_cast<double>(model.weightBytesPerWorker(tp));
    const double budget = usable - weights -
                          static_cast<double>(activation_reserve_bytes);
    fatal_if(budget <= 0, "model ", model.name,
             " does not fit on ", tp, "x ", gpu.name);
    return static_cast<u64>(budget);
}

Engine::Engine(EngineConfig config)
    : config_(config),
      kernel_(config.gpu, config.model, config.tp),
      overhead_(),
      scheduler_(config.scheduler),
      block_size_(perf::defaultBlockSize(config.backend))
{
    const u64 budget = config_.kvBudgetPerWorker();
    if (perf::isPaged(config_.backend)) {
        backend_ = std::make_unique<PagedBackend>(
            config_.model, config_.tp, block_size_, budget);
    } else {
        auto options = config_.vattn;
        options.max_batch_size =
            std::max(options.max_batch_size,
                     config_.scheduler.max_num_seqs);
        auto backend = std::make_unique<VAttentionBackend>(
            config_.model, config_.tp, budget, options);
        vattn_backend_ = backend.get();
        backend_ = std::move(backend);
    }
}

void
Engine::admitArrivals(const std::vector<Request *> &by_arrival,
                      std::size_t &next_arrival)
{
    while (next_arrival < by_arrival.size() &&
           by_arrival[next_arrival]->arrival_ns <= clock_.now()) {
        scheduler_.enqueue(by_arrival[next_arrival]);
        ++next_arrival;
    }
}

ActiveLens
Engine::activeLens() const
{
    ActiveLens active;
    active.reserve(running_.size());
    for (const Request *request : running_) {
        active.emplace_back(request->slot, request->contextLen());
    }
    return active;
}

void
Engine::preemptOne()
{
    panic_if(running_.empty(), "preemption with nothing running");
    // vLLM preempts the most recently admitted request and recomputes
    // it from scratch later.
    Request *victim = running_.back();
    running_.pop_back();
    backend_->freeSlot(victim->slot);
    victim->slot = -1;
    victim->generated = 0;
    ++victim->preemptions;
    scheduler_.requeueFront(victim);
}

TimeNs
Engine::ensureWithPreemption(RunReport &report)
{
    while (true) {
        auto result = backend_->ensure(activeLens());
        if (result.isOk()) {
            return result.value();
        }
        panic_if(result.code() != ErrorCode::kOutOfMemory,
                 "backend ensure failed: ", result.status().message());
        panic_if(running_.empty(),
                 "a single request exceeds the KV budget");
        preemptOne();
        ++report.preemptions;
    }
}

void
Engine::finishRequest(Request *request, RunReport &report)
{
    backend_->freeSlot(request->slot);
    request->slot = -1;
    request->state = Request::State::kFinished;
    request->finish_ns = clock_.now();
    report.addRequest(*request);
    running_.erase(std::find(running_.begin(), running_.end(), request));
}

i64
Engine::maxBlocksInBatch() const
{
    if (block_size_ == 0) {
        return 0;
    }
    i64 max_blocks = 0;
    for (const Request *request : running_) {
        max_blocks = std::max(
            max_blocks, static_cast<i64>(ceilDiv(
                            static_cast<u64>(request->contextLen()),
                            static_cast<u64>(block_size_))));
    }
    return max_blocks;
}

i64
Engine::totalBlocksInBatch() const
{
    if (block_size_ == 0) {
        return 0;
    }
    i64 total = 0;
    for (const Request *request : running_) {
        total += static_cast<i64>(
            ceilDiv(static_cast<u64>(request->contextLen()),
                    static_cast<u64>(block_size_)));
    }
    return total;
}

void
Engine::runPrefillIteration(std::vector<Request *> prompts,
                            RunReport &report)
{
    for (Request *request : prompts) {
        auto slot = backend_->allocSlot();
        panic_if(!slot.isOk(), "allocSlot failed after canAdmit");
        request->slot = slot.value();
        request->state = Request::State::kRunning;
        if (request->first_scheduled_ns == 0) {
            request->first_scheduled_ns = clock_.now();
        }
        running_.push_back(request);
    }

    const TimeNs mem_ns = ensureWithPreemption(report);

    i64 prefill_tokens = 0;
    TimeNs attn_ns = 0;
    i64 new_blocks = 0;
    for (const Request *request : prompts) {
        if (request->state != Request::State::kRunning) {
            continue; // preempted while ensuring memory
        }
        prefill_tokens += request->prompt_tokens;
        attn_ns += kernel_.prefillAttention(config_.backend,
                                            request->prompt_tokens);
        if (block_size_ > 0) {
            new_blocks += static_cast<i64>(
                ceilDiv(static_cast<u64>(request->prompt_tokens),
                        static_cast<u64>(block_size_)));
        }
    }
    const TimeNs linear_ns = kernel_.prefillLinear(prefill_tokens);
    const TimeNs comm_ns = kernel_.commTime(prefill_tokens);
    const TimeNs gpu_ns = attn_ns + linear_ns + comm_ns;
    const TimeNs cpu_ns = overhead_.prefillCpu(
        config_.backend, static_cast<i64>(prompts.size()), new_blocks);

    backend_->computeWindow(gpu_ns);

    const TimeNs start = clock_.now();
    clock_.advance(mem_ns + gpu_ns + cpu_ns);
    report.busy_ns += mem_ns + gpu_ns + cpu_ns;
    ++report.prefill_iterations;
    report.peak_batch =
        std::max(report.peak_batch, static_cast<i64>(running_.size()));
    if (config_.record_iterations) {
        report.iterations.push_back(IterationRecord{
            start, clock_.now() - start, true,
            static_cast<i64>(prompts.size()), mem_ns, 0});
    }

    // The prefill emits each prompt's first output token.
    for (Request *request : prompts) {
        // The request may have been preempted during ensure; skip it.
        if (request->state != Request::State::kRunning) {
            continue;
        }
        request->prefill_done_ns = clock_.now();
        request->generated = 1;
        if (request->done() ||
            request->contextLen() >= config_.model.max_context_len) {
            finishRequest(request, report);
        }
    }
}

void
Engine::runDecodeIteration(RunReport &report)
{
    const TimeNs mem_ns = ensureWithPreemption(report);
    const i64 batch = static_cast<i64>(running_.size());
    if (batch == 0) {
        return; // everything got preempted (pathological budget)
    }

    i64 total_kv = 0;
    for (const Request *request : running_) {
        total_kv += request->contextLen();
    }

    const TimeNs gpu_ns = kernel_.decodeLinear(batch) +
                          kernel_.decodeAttention(config_.backend,
                                                  total_kv) +
                          kernel_.commTime(batch);
    const TimeNs cpu_ns = overhead_.decodeCpu(
        config_.backend, batch, maxBlocksInBatch(),
        totalBlocksInBatch());

    backend_->computeWindow(gpu_ns);

    const TimeNs start = clock_.now();
    clock_.advance(mem_ns + gpu_ns + cpu_ns);
    report.busy_ns += mem_ns + gpu_ns + cpu_ns;
    ++report.decode_iterations;
    report.peak_batch = std::max(report.peak_batch, batch);
    if (config_.record_iterations) {
        i64 groups = 0;
        if (vattn_backend_) {
            groups = vattn_backend_->lastStep().handles_mapped;
        }
        report.iterations.push_back(IterationRecord{
            start, clock_.now() - start, false, batch, mem_ns, groups});
    }

    // Each running request produced one token.
    std::vector<Request *> finished;
    for (Request *request : running_) {
        ++request->generated;
        if (request->done() ||
            request->contextLen() >= config_.model.max_context_len) {
            finished.push_back(request);
        }
    }
    for (Request *request : finished) {
        finishRequest(request, report);
    }
}

RunReport
Engine::run(std::vector<Request> trace)
{
    RunReport report;
    if (trace.empty()) {
        return report;
    }

    std::vector<Request *> by_arrival;
    by_arrival.reserve(trace.size());
    for (Request &request : trace) {
        by_arrival.push_back(&request);
    }
    std::stable_sort(by_arrival.begin(), by_arrival.end(),
                     [](const Request *a, const Request *b) {
                         return a->arrival_ns < b->arrival_ns;
                     });

    std::size_t next_arrival = 0;
    std::size_t finished = 0;
    while (finished < trace.size()) {
        admitArrivals(by_arrival, next_arrival);

        if (running_.empty() && !scheduler_.hasWaiting()) {
            panic_if(next_arrival >= by_arrival.size(),
                     "engine idle with unfinished requests");
            clock_.advanceTo(by_arrival[next_arrival]->arrival_ns);
            continue;
        }

        auto prompts = scheduler_.pickPrefillBatch(
            static_cast<int>(running_.size()),
            [&](const Request &request) {
                return backend_->canAdmit(request.prompt_tokens);
            });

        const i64 finished_before = report.num_requests;
        if (!prompts.empty()) {
            runPrefillIteration(std::move(prompts), report);
        } else if (!running_.empty()) {
            runDecodeIteration(report);
        } else {
            fatal("head-of-queue request (",
                  scheduler_.numWaiting(),
                  " waiting) can never be admitted: prompt exceeds "
                  "the KV budget");
        }
        finished += static_cast<std::size_t>(report.num_requests -
                                             finished_before);
    }

    report.makespan_ns = clock_.now();
    return report;
}

Engine::DecodeRun
Engine::decodeOnly(int batch, i64 initial_ctx, int iterations)
{
    return decodeOnlyVaried(
        std::vector<i64>(static_cast<std::size_t>(batch), initial_ctx),
        iterations);
}

Engine::DecodeRun
Engine::decodeOnlyVaried(const std::vector<i64> &initial_ctx,
                         int iterations)
{
    RunReport scratch;
    const int batch = static_cast<int>(initial_ctx.size());
    // Stand the batch up (untimed setup).
    std::vector<Request> requests(static_cast<std::size_t>(batch));
    for (int i = 0; i < batch; ++i) {
        auto &request = requests[static_cast<std::size_t>(i)];
        request.id = static_cast<u64>(i);
        request.prompt_tokens = initial_ctx[static_cast<std::size_t>(i)];
        request.max_new_tokens = iterations + 2;
        auto slot = backend_->allocSlot();
        panic_if(!slot.isOk(), "decodeOnly: batch does not fit: ",
                 slot.status().message());
        request.slot = slot.value();
        request.state = Request::State::kRunning;
        request.generated = 1;
        running_.push_back(&request);
    }
    // Untimed prefill backing; preempts (drops) tail requests if the
    // whole batch cannot fit, exactly like the serving loop would.
    ensureWithPreemption(scratch);

    DecodeRun result;
    const TimeNs t0 = clock_.now();
    const u64 bytes0 = backend_->bytesInUse();
    const bool record = config_.record_iterations;
    i64 tokens = 0;
    for (int i = 0; i < iterations; ++i) {
        const TimeNs iter_start = clock_.now();
        runDecodeIteration(scratch);
        tokens += static_cast<i64>(running_.size());
        const double ms =
            SimClock::toMillis(clock_.now() - iter_start);
        result.iter_ms.add(ms);
        if (record && !scratch.iterations.empty()) {
            result.iterations.push_back(scratch.iterations.back());
        }
    }
    const double elapsed_s = SimClock::toSeconds(clock_.now() - t0);
    // Zero iterations leave the clock untouched; report 0, not 0/0.
    result.tokens_per_second =
        elapsed_s > 0 ? static_cast<double>(tokens) / elapsed_s : 0.0;
    const u64 bytes1 = backend_->bytesInUse();
    result.alloc_bytes_per_second =
        bytes1 > bytes0 && elapsed_s > 0
            ? static_cast<double>(bytes1 - bytes0) * config_.tp /
                  elapsed_s
            : 0.0;
    result.mean_iter_ms = result.iter_ms.mean();
    result.effective_batch = static_cast<i64>(running_.size());
    result.preemptions = scratch.preemptions;

    // Tear the batch down; drop any requests preemption pushed back
    // into the queue (they point into this frame's storage).
    while (!running_.empty()) {
        Request *request = running_.back();
        running_.pop_back();
        backend_->freeSlot(request->slot);
    }
    scheduler_.clearWaiting();
    return result;
}

Engine::PrefillRun
Engine::prefillOnce(i64 ctx)
{
    auto slot = backend_->allocSlot();
    panic_if(!slot.isOk(), "prefillOnce: no slot available");

    PrefillRun result;
    ActiveLens active{{slot.value(), ctx}};
    auto mem = backend_->ensure(active);
    panic_if(!mem.isOk(), "prefillOnce: prompt does not fit");
    result.mem_ns = mem.value();
    result.attention_ns = kernel_.prefillAttention(config_.backend, ctx);
    result.linear_ns = kernel_.prefillLinear(ctx);
    result.comm_ns = kernel_.commTime(ctx);
    i64 new_blocks = 0;
    if (block_size_ > 0) {
        new_blocks = static_cast<i64>(ceilDiv(
            static_cast<u64>(ctx), static_cast<u64>(block_size_)));
    }
    result.cpu_ns = overhead_.prefillCpu(config_.backend, 1, new_blocks);
    result.total_ns = result.mem_ns + result.attention_ns +
                      result.linear_ns + result.comm_ns + result.cpu_ns;

    backend_->computeWindow(result.attention_ns + result.linear_ns);
    clock_.advance(result.total_ns);
    backend_->freeSlot(slot.value());
    return result;
}

} // namespace vattn::serving
