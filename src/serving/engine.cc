#include "serving/engine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "serving/paged_backend.hh"
#include "serving/serving_audit.hh"

namespace vattn::serving
{

namespace
{

/** KV blocks consumed by a context of @p tokens. */
i64
blocksFor(i64 tokens, i64 block_size)
{
    if (block_size <= 0 || tokens <= 0) {
        return 0;
    }
    return static_cast<i64>(ceilDiv(static_cast<u64>(tokens),
                                    static_cast<u64>(block_size)));
}

} // namespace

const char *
toString(PreemptionPolicy policy)
{
    switch (policy) {
      case PreemptionPolicy::kRecompute: return "recompute";
      case PreemptionPolicy::kSwap: return "swap";
      case PreemptionPolicy::kAuto: return "auto";
    }
    return "?";
}

const char *
toString(PreemptionVictim policy)
{
    switch (policy) {
      case PreemptionVictim::kLifo: return "lifo";
      case PreemptionVictim::kSmallestRecompute:
        return "smallest_recompute";
    }
    return "?";
}

u64
EngineConfig::kvBudgetPerWorker() const
{
    if (kv_budget_override != 0) {
        return kv_budget_override;
    }
    const double usable =
        gpu_mem_util * static_cast<double>(gpu.mem_bytes);
    const double weights =
        static_cast<double>(model.weightBytesPerWorker(tp_degree));
    const double budget = usable - weights -
                          static_cast<double>(activation_reserve_bytes);
    fatal_if(budget <= 0, "model ", model.name,
             " does not fit on ", tp_degree, "x ", gpu.name);
    return static_cast<u64>(budget);
}

Engine::Engine(EngineConfig config)
    : config_(std::move(config)),
      kernel_(config_.gpu, config_.model, config_.tp_degree,
              config_.nccl),
      overhead_(),
      scheduler_(config_.scheduler),
      composer_(config_.scheduler),
      block_size_(perf::defaultBlockSize(config_.backend))
{
    const u64 budget = config_.kvBudgetPerWorker();
    // The host tier is only committed when the policy can swap, so the
    // default (kRecompute) build is bit-for-bit the historical one.
    const u64 host_bytes =
        config_.preemption_policy == PreemptionPolicy::kRecompute
            ? 0
            : config_.host_swap_bytes;
    if (perf::isPaged(config_.backend)) {
        // alloc-ok: engine construction, once per replica
        backend_ = std::make_unique<PagedBackend>(
            config_.model, config_.tp_degree, block_size_, budget,
            config_.enable_prefix_caching, host_bytes, config_.pcie);
    } else {
        auto options = config_.vattn;
        options.max_batch_size =
            std::max(options.max_batch_size,
                     config_.scheduler.max_num_seqs);
        options.enable_prefix_caching |= config_.enable_prefix_caching;
        options.host_swap_bytes =
            std::max(options.host_swap_bytes, host_bytes);
        // alloc-ok: engine construction, once per replica
        auto backend = std::make_unique<VAttentionBackend>(
            config_.model, config_.tp_degree, budget, options);
        vattn_backend_ = backend.get();
        vattn_backend_->setCopyModel(config_.pcie.toCopyModel());
        backend_ = std::move(backend);
    }
    // Single admission gate: the composer's budgets, the starvation
    // check and the backend all see prefix-discounted demand. Built
    // once here so composing an iteration never constructs a
    // std::function.
    can_admit_ = [this](Request &request) {
        return canAdmitRequest(request);
    };
}

i64
Engine::uncachedPromptTokens(Request &request) const
{
    request.prefix_hint = 0;
    if (backend_->prefixCachingEnabled() && request.hasTokenIds()) {
        // At least one prompt token is always computed: a full-prompt
        // hit still needs a 1-token prefill to produce the first
        // output token.
        request.prefix_hint =
            std::min(backend_->matchPrefix(request.prefixKey()),
                     request.prompt_tokens - 1);
    }
    return request.prompt_tokens - request.prefix_hint;
}

bool
Engine::canAdmitRequest(Request &request) const
{
    return backend_->canAdmit(uncachedPromptTokens(request));
}

void
Engine::admitArrivals()
{
    while (!arrivals_.empty() &&
           arrivals_.nextTimeNs() <= clock_.now()) {
        scheduler_.enqueue(arrivals_.pop());
    }
}

const ActiveLens &
Engine::activeLens(const IterationPlan &plan)
{
    ActiveLens &active = active_lens_;
    active.clear();
    for (const Request *request : running_) {
        i64 target = request->contextLen();
        // A prefill chunk's KV is written this iteration: reserve it.
        for (const PrefillChunk &chunk : plan.prefills) {
            if (chunk.request == request) {
                target = request->prefilled_tokens + chunk.tokens;
                break;
            }
        }
        active.emplace_back(request->slot, target);
    }
    return active;
}

TimeNs
Engine::recomputeCostNs(const Request *request) const
{
    const i64 ctx = request->contextLen();
    if (ctx <= 0) {
        return 0;
    }
    // What evicting this request throws away: the prefill FLOPs of
    // every token already in its KV cache (decoded tokens included —
    // recomputation replays them as prompt). Sliding-window layers
    // recompute only their banded score matrix.
    return kernel_.chunkedPrefillAttentionWindowed(config_.backend,
                                                   ctx, ctx) +
           kernel_.prefillLinear(ctx) + kernel_.commTime(ctx);
}

Request *
Engine::pickVictim()
{
    panic_if(running_.empty(), "preemption with nothing running");
    if (config_.preemption_victim == PreemptionVictim::kLifo) {
        // vLLM preempts the most recently admitted request.
        return running_.back();
    }
    // Smallest recompute cost, scanning newest-first so ties keep the
    // LIFO choice.
    Request *best = running_.back();
    TimeNs best_cost = recomputeCostNs(best);
    for (auto it = std::next(running_.rbegin());
         it != running_.rend(); ++it) {
        const TimeNs cost = recomputeCostNs(*it);
        if (cost < best_cost) {
            best = *it;
            best_cost = cost;
        }
    }
    return best;
}

void
Engine::preemptOne(RunReport &report, TimeNs *swap_stall_ns)
{
    Request *victim = pickVictim();
    bool try_swap = false;
    switch (config_.preemption_policy) {
      case PreemptionPolicy::kRecompute:
        break;
      case PreemptionPolicy::kSwap:
        try_swap = true;
        break;
      case PreemptionPolicy::kAuto: {
        // Swap iff the PCIe round trip undercuts replaying the
        // victim's prefill.
        const u64 bytes = backend_->slotPhysBytes(victim->slot);
        try_swap = bytes > 0 && config_.pcie.roundTripNs(bytes) <
                                    recomputeCostNs(victim);
        break;
      }
    }
    // Only decode-phase victims swap. A mid-prefill victim would come
    // back only to compose the same too-big prefill iteration and be
    // preempted again (swap-in bypasses the memory-gated admission
    // path that breaks that cycle for recomputation), so it restarts
    // from token 0 through the waiting queue instead.
    if (try_swap && victim->prefillComplete() &&
        backend_->canSwapOut(victim->slot)) {
        auto result = backend_->swapOut(victim->slot);
        if (result.isOk()) {
            running_.erase(
                std::find(running_.begin(), running_.end(), victim));
            ++victim->preemptions;
            // Computed state survives: the victim resumes where it
            // stopped, recomputing nothing. The TBT chain restarts
            // like recompute preemption's does, so the parked wait is
            // charged to swap_stall_ns/latency — not sampled as one
            // giant inter-token gap that the recompute policy's
            // resetComputedState would have hidden.
            victim->last_token_ns = 0;
            scheduler_.pushSwapped(victim);
            ++report.swap_outs;
            report.swap_out_bytes += result.value().bytes;
            report.swap_stall_ns += result.value().stall_ns;
            if (swap_stall_ns) {
                *swap_stall_ns += result.value().stall_ns;
            }
            return;
        }
    }
    // Recompute (also the fallback when the victim cannot be swapped:
    // prefix-aliased pages, host tier full): free the KV and restart
    // from prompt token 0 later (a half-prefilled victim included).
    running_.erase(std::find(running_.begin(), running_.end(), victim));
    backend_->freeSlot(victim->slot);
    victim->resetComputedState();
    ++victim->preemptions;
    scheduler_.requeueFront(victim);
}

void
Engine::dropRequest(Request *request, RunReport &report)
{
    auto it = std::find(running_.begin(), running_.end(), request);
    if (it != running_.end()) {
        running_.erase(it);
    }
    if (request->slot >= 0) {
        backend_->freeSlot(request->slot);
    }
    request->resetComputedState();
    request->state = Request::State::kDropped;
    request->finish_ns = clock_.now();
    ++report.dropped_requests;
    report.addRejected(*request);
    if (request->stream != nullptr && request->stream->on_finish) {
        request->stream->on_finish(*request);
    }
}

TimeNs
Engine::prefillCostNs(const Request *request) const
{
    const i64 tokens = request->remainingPromptTokens();
    if (tokens <= 0) {
        return 0;
    }
    return kernel_.chunkedPrefillAttentionWindowed(config_.backend,
                                                   tokens, tokens) +
           kernel_.prefillLinear(tokens) + kernel_.commTime(tokens);
}

void
Engine::shedRequest(Request *request, RunReport &report)
{
    request->state = Request::State::kShed;
    request->finish_ns = clock_.now();
    ++report.shed_requests;
    report.addRejected(*request);
    if (request->stream != nullptr && request->stream->on_finish) {
        request->stream->on_finish(*request);
    }
}

void
Engine::shedHopeless(RunReport &report)
{
    if (!config_.shed_on_ttft) {
        return;
    }
    // Head-of-queue only: under FCFS the head starts next, so its
    // earliest possible first token is now + its own prefill — a
    // certain miss at that bound is a certain miss, full stop.
    // Requests further back would need the whole queue's prefill sum
    // (an estimate that degrades with depth), and they get the same
    // exact check when they reach the head.
    while (scheduler_.hasWaiting()) {
        Request *head = scheduler_.frontWaiting();
        if (head->ttft_deadline_ns <= 0) {
            break; // FCFS: an undeadlined head is served, not skipped
        }
        const TimeNs deadline =
            head->arrival_ns + head->ttft_deadline_ns;
        if (clock_.now() + prefillCostNs(head) <= deadline) {
            break;
        }
        scheduler_.popFrontWaiting();
        shedRequest(head, report);
    }
}

TimeNs
Engine::ensureWithPreemption(const IterationPlan &plan,
                             RunReport &report)
{
    TimeNs swap_ns = 0;
    while (true) {
        auto result = backend_->ensure(activeLens(plan));
        if (result.isOk()) {
            return result.value() + swap_ns;
        }
        panic_if(result.code() != ErrorCode::kOutOfMemory,
                 "backend ensure failed: ", result.status().message());
        panic_if(running_.empty(), "ensure OOM with nothing running");
        if (running_.size() == 1) {
            // Nothing left to preempt: this one request's demand
            // exceeds the whole KV budget (even after reclaiming every
            // cached group). Fail it gracefully and keep serving
            // instead of panicking.
            dropRequest(running_.back(), report);
            continue;
        }
        preemptOne(report, &swap_ns);
        ++report.preemptions;
    }
}

void
Engine::swapInReady(RunReport &report)
{
    while (scheduler_.hasSwapped()) {
        Request *request = scheduler_.frontSwapped();
        // FCFS, gated on capacity headroom — except when nothing is
        // running: the device is idle, so force the attempt (progress
        // guarantee; a swapped request always fits an empty device).
        if (!running_.empty() && !backend_->canSwapIn(request->slot)) {
            break;
        }
        auto result = backend_->swapIn(request->slot);
        if (!result.isOk()) {
            panic_if(running_.empty(),
                     "swap-in stuck with an idle device: ",
                     result.status().message());
            break;
        }
        scheduler_.popFrontSwapped();
        request->state = Request::State::kRunning;
        running_.push_back(request);
        ++report.swap_ins;
        report.swap_in_bytes += result.value().bytes;
        report.swap_stall_ns += result.value().stall_ns;
        report.busy_ns += result.value().stall_ns;
        clock_.advance(result.value().stall_ns);
    }
}

void
Engine::finishRequest(Request *request, RunReport &report)
{
    backend_->freeSlot(request->slot);
    request->slot = -1;
    request->state = Request::State::kFinished;
    request->finish_ns = clock_.now();
    report.addRequest(*request);
    running_.erase(std::find(running_.begin(), running_.end(), request));
    if (request->stream != nullptr && request->stream->on_finish) {
        request->stream->on_finish(*request);
    }
}

void
Engine::recordToken(Request *request, RunReport &report)
{
    const TimeNs now = clock_.now();
    if (request->last_token_ns != 0) {
        report.tbt_s.add(SimClock::toSeconds(now -
                                             request->last_token_ns));
    }
    request->last_token_ns = now;
    // ---- SLO verdicts + streaming (inert for offline requests) -----
    // last_emit_ns survives preemption epochs (last_token_ns does
    // not), so these see the token gaps a client would observe.
    const bool first = request->last_emit_ns == 0;
    if (first) {
        if (request->ttft_deadline_ns > 0 &&
            now > request->arrival_ns + request->ttft_deadline_ns) {
            request->ttft_violated = true;
        }
    } else if (request->tbt_deadline_ns > 0 &&
               now - request->last_emit_ns >
                   request->tbt_deadline_ns) {
        request->tbt_violated = true;
    }
    request->last_emit_ns = now;
    if (request->stream != nullptr) {
        if (first && request->stream->on_first_token) {
            request->stream->on_first_token(*request);
        }
        if (request->stream->on_token) {
            request->stream->on_token(*request);
        }
    }
}

i64
Engine::maxBlocksIn(const std::vector<Request *> &requests,
                    i64 block_size)
{
    i64 max_blocks = 0;
    for (const Request *request : requests) {
        max_blocks = std::max(
            max_blocks, blocksFor(request->contextLen(), block_size));
    }
    return max_blocks;
}

i64
Engine::totalBlocksIn(const std::vector<Request *> &requests,
                      i64 block_size)
{
    i64 total = 0;
    for (const Request *request : requests) {
        total += blocksFor(request->contextLen(), block_size);
    }
    return total;
}

const IterationPlan &
Engine::decodePlan()
{
    plan_.clear();
    plan_.decodes.assign(running_.begin(), running_.end());
    return plan_;
}

void
Engine::runIteration(const IterationPlan &plan, RunReport &report)
{
    if (plan.empty()) {
        return; // nothing to run (drained decodeOnly batch)
    }

    // ---- Admission: first chunks lease a backend slot --------------
    // Prefix-aware: a cached prefix match starts the request's prefill
    // at the matched offset (the backend aliased or shared the KV).
    TimeNs prefix_alloc_ns = 0;
    for (const PrefillChunk &chunk : plan.prefills) {
        if (!chunk.first_chunk) {
            continue;
        }
        Request *request = chunk.request;
        auto lease = backend_->allocSlot(request->prefixKey(),
                                         request->prefix_hint);
        panic_if(!lease.isOk(), "allocSlot failed after canAdmit");
        request->slot = lease.value().slot;
        if (backend_->prefixCachingEnabled() &&
            request->hasTokenIds()) {
            ++report.prefix_lookups;
            if (lease.value().cached_tokens > 0) {
                ++report.prefix_hits;
                report.prefill_tokens_saved +=
                    lease.value().cached_tokens;
                request->prefilled_tokens = lease.value().cached_tokens;
            }
            // The hint served its purpose; from here on actual prefill
            // progress is the truth (the hit may have under-delivered
            // if the matched entry was sacrificed meanwhile).
            request->prefix_hint = lease.value().cached_tokens;
        }
        prefix_alloc_ns += lease.value().alloc_ns;
        request->state = Request::State::kRunning;
        if (request->first_scheduled_ns == 0) {
            request->first_scheduled_ns = clock_.now();
        }
        running_.push_back(request);
    }

    const TimeNs mem_ns =
        prefix_alloc_ns + ensureWithPreemption(plan, report);

    // ---- Survivors (ensure may have preempted plan members) --------
    std::vector<const PrefillChunk *> &prefills = iter_prefills_;
    prefills.clear();
    for (const PrefillChunk &chunk : plan.prefills) {
        if (chunk.request->state == Request::State::kRunning) {
            prefills.push_back(&chunk);
        }
    }
    std::vector<Request *> &decodes = iter_decodes_;
    decodes.clear();
    for (Request *request : plan.decodes) {
        if (request->state == Request::State::kRunning) {
            decodes.push_back(request);
        }
    }
    const i64 decode_batch = static_cast<i64>(decodes.size());
    if (plan.prefills.empty() && decode_batch == 0) {
        return; // everything got preempted (pathological budget)
    }

    // ---- GPU time --------------------------------------------------
    i64 prefill_tokens = 0;
    TimeNs attn_ns = 0;
    i64 new_blocks = 0;
    for (const PrefillChunk *chunk : prefills) {
        const Request *request = chunk->request;
        const i64 kv_len = request->prefilled_tokens + chunk->tokens;
        prefill_tokens += chunk->tokens;
        attn_ns += kernel_.chunkedPrefillAttentionWindowed(
            config_.backend, chunk->tokens, kv_len);
        new_blocks += blocksFor(kv_len, block_size_) -
                      blocksFor(request->prefilled_tokens, block_size_);
    }
    // Per-request KV lengths: sliding-window layers stream only
    // min(kv, window) tokens each (the sum is enough for uniform
    // models, where decodeAttentionWindowed degenerates to the
    // historical total-token path).
    std::vector<i64> &decode_kv_lens = iter_kv_lens_;
    decode_kv_lens.clear();
    for (const Request *request : decodes) {
        decode_kv_lens.push_back(request->contextLen());
    }
    attn_ns += kernel_.decodeAttentionWindowed(config_.backend,
                                               decode_kv_lens);

    // The linear operators and the all-reduce see one flat token
    // batch: chunk tokens plus one token per decode.
    const i64 token_units = prefill_tokens + decode_batch;
    const TimeNs linear_ns = prefill_tokens > 0
                                 ? kernel_.prefillLinear(token_units)
                                 : kernel_.decodeLinear(decode_batch);
    // All-reduce cost of the flat token batch. With overlap enabled,
    // comm hides behind attention + linear and only the exposed
    // remainder lengthens the iteration (the accounting below reports
    // that exposed portion — what the replica actually paid).
    TimeNs comm_ns = kernel_.commTime(token_units);
    if (config_.overlap_comm) {
        const TimeNs hideable = attn_ns + linear_ns;
        comm_ns = comm_ns > hideable ? comm_ns - hideable : 0;
    }
    const TimeNs gpu_ns = attn_ns + linear_ns + comm_ns;

    // ---- CPU time --------------------------------------------------
    TimeNs cpu_ns = 0;
    if (plan.decodes.empty()) {
        cpu_ns = overhead_.prefillCpu(
            config_.backend, static_cast<i64>(plan.prefills.size()),
            new_blocks);
    } else if (plan.prefills.empty()) {
        cpu_ns = overhead_.decodeCpu(config_.backend, decode_batch,
                                     maxBlocksIn(decodes, block_size_),
                                     totalBlocksIn(decodes, block_size_));
    } else {
        cpu_ns = overhead_.hybridCpu(
            config_.backend, static_cast<i64>(plan.prefills.size()),
            new_blocks, decode_batch,
            maxBlocksIn(decodes, block_size_),
            totalBlocksIn(decodes, block_size_));
    }

    backend_->computeWindow(gpu_ns);

    // ---- Advance the clock and account the iteration ---------------
    const TimeNs start = clock_.now();
    clock_.advance(mem_ns + gpu_ns + cpu_ns);
    report.busy_ns += mem_ns + gpu_ns + cpu_ns;
    report.comm_ns += comm_ns;
    const bool pure_prefill = plan.decodes.empty();
    if (pure_prefill) {
        ++report.prefill_iterations;
    } else if (plan.prefills.empty()) {
        ++report.decode_iterations;
    } else {
        ++report.mixed_iterations;
    }
    report.peak_batch =
        std::max(report.peak_batch, static_cast<i64>(running_.size()));
    if (config_.record_iterations) {
        i64 groups = 0;
        if (vattn_backend_ && !pure_prefill) {
            groups = vattn_backend_->lastStep().handles_mapped;
        }
        const i64 batch =
            pure_prefill ? static_cast<i64>(plan.prefills.size())
                         : decode_batch +
                               static_cast<i64>(prefills.size());
        report.iterations.push_back(IterationRecord{
            start, clock_.now() - start, pure_prefill, batch, mem_ns,
            groups, prefill_tokens, static_cast<i64>(prefills.size()),
            decode_batch, comm_ns});
    }

    // ---- Token emission --------------------------------------------
    // A chunk advances prefill progress; the chunk that completes the
    // prompt emits the request's first output token.
    for (const PrefillChunk *chunk : prefills) {
        Request *request = chunk->request;
        // min(): a prefix-cache hit at allocation may already have
        // advanced prefilled_tokens past what the plan assumed.
        request->prefilled_tokens +=
            std::min(chunk->tokens,
                     request->prompt_tokens - request->prefilled_tokens);
        if (backend_->prefixCachingEnabled() &&
            request->hasTokenIds()) {
            backend_->registerPrefix(
                request->slot, request->prefixKey(),
                std::min(request->prefilled_tokens,
                         request->prompt_tokens));
        }
        if (!request->prefillComplete()) {
            continue;
        }
        request->prefill_done_ns = clock_.now();
        request->generated = 1;
        recordToken(request, report);
        if (request->done() ||
            request->contextLen() >= config_.model.max_context_len) {
            finishRequest(request, report);
        }
    }
    // Each decode request produced one token.
    std::vector<Request *> &finished = iter_finished_;
    finished.clear();
    for (Request *request : decodes) {
        ++request->generated;
        recordToken(request, report);
        if (request->done() ||
            request->contextLen() >= config_.model.max_context_len) {
            finished.push_back(request);
        }
    }
    for (Request *request : finished) {
        finishRequest(request, report);
    }
}

audit::AuditReport
Engine::auditNow() const
{
    audit::AuditReport report;
    auditServingState(running_, scheduler_, report);
    backend_->auditInto(report);
    return report;
}

#if VATTN_AUDIT
void
Engine::auditTick()
{
    ++audit_iter_;
    audit::AuditReport report;
    auditServingState(running_, scheduler_, report);
    const auto observe = [this, &report](const Request *request) {
        if (request == nullptr) {
            return;
        }
        const auto it = audit_last_state_.find(request->id);
        if (it != audit_last_state_.end() &&
            !isReachableState(it->second, request->state)) {
            report.fail("serving: request ", request->id, " went ",
                        toString(it->second), " -> ",
                        toString(request->state),
                        " with no legal transition path");
        }
        audit_last_state_[request->id] = request->state;
    };
    for (const Request *request : running_) {
        observe(request);
    }
    for (const Request *request : scheduler_.waitingQueue()) {
        observe(request);
    }
    for (const Request *request : scheduler_.swappedQueue()) {
        observe(request);
    }
    // The serving-layer checks above are O(requests) and run every
    // iteration. The cross-layer backend audit is O(KV state), so on
    // long runs it audits every iteration while the state is being
    // stood up, then on a stride — accounting drift persists once
    // introduced, so a sampled audit still catches it (only the exact
    // iteration is localized more coarsely). run()/decodeOnlyVaried()
    // audit the final state unconditionally.
    if (audit_iter_ <= kAuditWarmupIters ||
        audit_iter_ % kAuditStride == 0) {
        backend_->auditInto(report);
    }
    panic_if(!report.ok(),
             "per-iteration audit failed\n", report.toString());
}

void
Engine::auditFinal() const
{
    const audit::AuditReport report = auditNow();
    panic_if(!report.ok(),
             "end-of-run audit failed\n", report.toString());
}
#endif

void
Engine::beginRun(std::vector<Request> trace)
{
    panic_if(runActive() || online_open_,
             "beginRun while a run is active");
#if VATTN_AUDIT
    audit_last_state_.clear();
    audit_iter_ = 0;
#endif
    trace_ = std::move(trace);
    run_report_ = RunReport{};
    run_total_ = trace_.size();
    run_finished_ = 0;

    // Feed the arrival event queue in trace order: the heap pops in
    // (arrival_ns, push-order) order, which is exactly the historical
    // stable_sort-by-arrival admission sequence.
    arrivals_.clear();
    arrivals_.reserve(trace_.size());
    i64 total_new_tokens = 0;
    for (Request &request : trace_) {
        arrivals_.push(request.arrival_ns, &request);
        total_new_tokens += request.max_new_tokens;
    }

    // Reserve every sample store for the whole run up front, so the
    // per-iteration hot path adds samples without reallocating.
    const std::size_t n = trace_.size();
    run_report_.latency_s.reserve(n);
    run_report_.ttft_s.reserve(n);
    run_report_.normalized_latency_s.reserve(n);
    run_report_.tbt_s.reserve(
        static_cast<std::size_t>(std::max<i64>(total_new_tokens, 0)));
}

TimeNs
Engine::nextEventNs() const
{
    if (!runActive()) {
        return sim::kNoEventNs;
    }
    if (!running_.empty() || scheduler_.hasWaiting() ||
        scheduler_.hasSwapped()) {
        return clock_.now(); // runnable work right now
    }
    panic_if(arrivals_.empty(), "engine idle with unfinished requests");
    return arrivals_.nextTimeNs();
}

void
Engine::stepRun()
{
    panic_if(!runActive(), "stepRun on an inactive engine");
    const i64 shed_before = run_report_.shed_requests;
    admitArrivals();
    // Swapped requests come back before new admissions (they hold
    // slots and finished prefill work; serving them first frees
    // capacity soonest and preserves FCFS fairness).
    swapInReady(run_report_);
    // Deadline-aware admission: certain TTFT misses are shed before
    // they consume prefill capacity (no-op unless configured).
    shedHopeless(run_report_);

    if (running_.empty() && !scheduler_.hasWaiting()) {
        panic_if(scheduler_.hasSwapped(),
                 "swapped requests stranded on an idle engine");
        run_finished_ += static_cast<std::size_t>(
            run_report_.shed_requests - shed_before);
        if (arrivals_.empty()) {
            // Only reachable when shedding just retired the last
            // in-flight requests (accounted above).
            panic_if(runActive(),
                     "engine idle with unfinished requests");
            return;
        }
        clock_.advanceTo(arrivals_.nextTimeNs());
        return;
    }

    const i64 finished_before = run_report_.num_requests;
    const i64 dropped_before = run_report_.dropped_requests;

    composer_.composeInto(plan_, scheduler_, running_, can_admit_);
    if (plan_.empty()) {
        // Nothing runs and the head of the queue cannot be admitted
        // with the device otherwise empty: its prompt exceeds the KV
        // budget and never will fit. Fail that one request and keep
        // serving.
        panic_if(!running_.empty(), "empty plan with requests running");
        Request *head = scheduler_.frontWaiting();
        panic_if(!head, "empty plan with nothing waiting");
        scheduler_.popFrontWaiting();
        dropRequest(head, run_report_);
    } else {
        runIteration(plan_, run_report_);
    }
    run_finished_ += static_cast<std::size_t>(
        (run_report_.num_requests - finished_before) +
        (run_report_.dropped_requests - dropped_before) +
        (run_report_.shed_requests - shed_before));
#if VATTN_AUDIT
    auditTick();
#endif
}

RunReport
Engine::endRun()
{
    panic_if(runActive(), "endRun with requests still in flight");
    panic_if(online_open_,
             "endRun with the online session still open");
    owned_.clear();
    last_submit_ns_ = 0;
    online_tbt_target_ = 0;
    if (run_total_ == 0) {
        return RunReport{}; // run() never even starts the clock
    }
#if VATTN_AUDIT
    auditFinal();
#endif
    run_report_.makespan_ns = clock_.now();
    const auto prefix_stats = backend_->prefixStats();
    run_report_.prefix_aliased_bytes = prefix_stats.aliased_bytes;
    run_report_.prefix_copied_bytes = prefix_stats.copied_bytes;
    run_total_ = 0;
    run_finished_ = 0;
    trace_.clear();
    return std::move(run_report_);
}

void
Engine::beginOnline(std::size_t expected_requests)
{
    panic_if(runActive() || online_open_,
             "beginOnline while a run is active");
#if VATTN_AUDIT
    audit_last_state_.clear();
    audit_iter_ = 0;
#endif
    trace_.clear();
    owned_.clear();
    arrivals_.clear();
    run_report_ = RunReport{};
    run_total_ = 0;
    run_finished_ = 0;
    last_submit_ns_ = 0;
    online_tbt_target_ = 0;
    online_open_ = true;
    if (expected_requests > 0) {
        // Head start for the per-submission geometric reservation
        // (reserveOnlineSamples); TBT pre-sizes there too, from the
        // submitted decode budgets.
        run_report_.latency_s.reserve(expected_requests);
        run_report_.ttft_s.reserve(expected_requests);
        run_report_.normalized_latency_s.reserve(expected_requests);
    }
}

void
Engine::gcOnline()
{
    const auto terminal = [](const Request &request) {
        switch (request.state) {
          case Request::State::kFinished:
          case Request::State::kDropped:
          case Request::State::kShed:
          case Request::State::kMigrated:
            return true;
          default:
            return false;
        }
    };
    while (!owned_.empty() && terminal(owned_.front())) {
        owned_.pop_front();
    }
}

Status
Engine::submitOnline(Request request)
{
    if (!online_open_) {
        return errorStatus(ErrorCode::kFailedPrecondition,
                           "no online session open (call beginOnline "
                           "before submitting)");
    }
    if (request.arrival_ns < last_submit_ns_) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "online arrivals must be time-ordered");
    }
    last_submit_ns_ = request.arrival_ns;
    gcOnline();
    reserveOnlineSamples(request);
    request.state = Request::State::kPending;
    // alloc-ok: one deque node per submission, off the iteration path
    owned_.push_back(std::move(request));
    arrivals_.push(owned_.back().arrival_ns, &owned_.back());
    ++run_total_;
    return Status::ok();
}

void
Engine::closeOnline()
{
    panic_if(!online_open_, "closeOnline without an open session");
    online_open_ = false;
}

Router::LiveLoad
Engine::liveLoad() const
{
    Router::LiveLoad load;
    load.queued = static_cast<i64>(scheduler_.numWaiting() +
                                   scheduler_.numSwapped());
    load.running = static_cast<i64>(running_.size());
    // Prompt tokens admitted but not yet prefilled: what a new arrival
    // must wait out before its own prefill can start.
    for (const Request *request : scheduler_.waitingQueue()) {
        load.prefill_debt_tokens += request->remainingPromptTokens();
    }
    for (const Request *request : running_) {
        load.prefill_debt_tokens += request->remainingPromptTokens();
    }
    const u64 budget = backend_->budgetBytes();
    load.kv_pressure =
        budget > 0 ? static_cast<double>(backend_->bytesInUse()) /
                         static_cast<double>(budget)
                   : 1.0;
    load.comm_share =
        run_report_.busy_ns > 0
            ? static_cast<double>(run_report_.comm_ns) /
                  static_cast<double>(run_report_.busy_ns)
            : 0.0;
    load.kv_saturated = !backend_->canAdmit(1);
    return load;
}

void
Engine::reserveOnlineSamples(const Request &request)
{
    // Per-request samples: one latency/TTFT/normalized each, up to
    // max_new_tokens TBT gaps. Growth is geometric (doubling), so the
    // amortized cost per submission is O(1) and stepRun's adds stay
    // reallocation-free — the open-ended-session analogue of
    // beginRun's whole-trace reservation.
    const auto grow = [](Percentiles &samples, std::size_t target) {
        if (samples.capacity() < target) {
            // alloc-ok: geometric sample-store growth at submission
            samples.reserve(std::max(target, 2 * samples.capacity()));
        }
    };
    const std::size_t requests = run_total_ + 1;
    grow(run_report_.latency_s, requests);
    grow(run_report_.ttft_s, requests);
    grow(run_report_.normalized_latency_s, requests);
    online_tbt_target_ +=
        static_cast<std::size_t>(request.max_new_tokens);
    grow(run_report_.tbt_s, online_tbt_target_);
}

void
Engine::adoptMigrant(Request request, bool swapped)
{
    reserveOnlineSamples(request);
    // alloc-ok: one deque node per migration, an explicit rebalancing
    // action off the iteration path
    owned_.push_back(std::move(request));
    Request *adopted = &owned_.back();
    ++run_total_;
    ++run_report_.migrations_in;
    if (swapped) {
        adopted->state = Request::State::kSwapped;
        scheduler_.pushSwapped(adopted);
    } else {
        scheduler_.enqueue(adopted);
    }
}

bool
Engine::migrateQueuedTo(Engine &target)
{
    Request *victim = scheduler_.backWaiting();
    if (victim == nullptr) {
        return false;
    }
    // The tail of the queue migrates: the requests that waited longest
    // keep their position here (FCFS-fair), and the mover starts fresh
    // on the target (a queued request holds no KV anywhere).
    Request moved = *victim;
    moved.slot = -1;
    moved.prefix_hint = 0; // the target's prefix cache is its own
    scheduler_.popBackWaiting();
    victim->state = Request::State::kMigrated;
    victim->finish_ns = clock_.now();
    ++run_finished_;
    ++run_report_.migrations_out;
    target.adoptMigrant(std::move(moved), /*swapped=*/false);
    return true;
}

bool
Engine::migrateSwappedTo(Engine &target)
{
    if (!backend_->supportsKvExport() ||
        !target.backend_->supportsKvExport()) {
        return false;
    }
    Request *victim = scheduler_.backSwapped();
    if (victim == nullptr) {
        return false;
    }
    auto image = backend_->exportSwapped(victim->slot);
    if (!image.isOk()) {
        return false;
    }
    if (!target.backend_->canImportSwapped(image.value())) {
        // Roll back: the donor just released these exact resources,
        // so re-importing its own image cannot fail. The victim never
        // left its queue slot — the attempt is side-effect-free.
        auto slot = backend_->importSwapped(image.value());
        slot.status().expectOk("donor re-import after refused migration");
        victim->slot = slot.value();
        return false;
    }
    auto slot = target.backend_->importSwapped(image.value());
    slot.status().expectOk("importSwapped after canImportSwapped");
    scheduler_.popBackSwapped();
    // The target owns a live copy holding the imported slot; the
    // donor's object stays behind as a tombstone. Computed state
    // travels with the copy — the KV image preserves it, so nothing
    // is recomputed (the target's swap-in pays only the HtoD copy).
    Request moved = *victim;
    moved.slot = slot.value();
    victim->state = Request::State::kMigrated;
    victim->slot = -1;
    victim->finish_ns = clock_.now();
    ++run_finished_;
    ++run_report_.migrations_out;
    target.adoptMigrant(std::move(moved), /*swapped=*/true);
    return true;
}

RunReport
Engine::run(std::vector<Request> trace)
{
    if (trace.empty()) {
        return RunReport{};
    }
    beginRun(std::move(trace));
    while (runActive()) {
        stepRun();
    }
    return endRun();
}

Engine::DecodeRun
Engine::decodeOnly(int batch, i64 initial_ctx, int iterations)
{
    return decodeOnlyVaried(
        std::vector<i64>(static_cast<std::size_t>(batch), initial_ctx),
        iterations);
}

Engine::DecodeRun
Engine::decodeOnlyVaried(const std::vector<i64> &initial_ctx,
                         int iterations)
{
    RunReport scratch;
#if VATTN_AUDIT
    audit_last_state_.clear();
    audit_iter_ = 0;
#endif
    const int batch = static_cast<int>(initial_ctx.size());
    // Stand the batch up (untimed setup).
    std::vector<Request> requests(static_cast<std::size_t>(batch));
    for (int i = 0; i < batch; ++i) {
        auto &request = requests[static_cast<std::size_t>(i)];
        request.id = static_cast<u64>(i);
        request.prompt_tokens = initial_ctx[static_cast<std::size_t>(i)];
        request.prefilled_tokens = request.prompt_tokens;
        request.max_new_tokens = iterations + 2;
        auto slot = backend_->allocSlot();
        panic_if(!slot.isOk(), "decodeOnly: batch does not fit: ",
                 slot.status().message());
        request.slot = slot.value();
        request.state = Request::State::kRunning;
        request.generated = 1;
        running_.push_back(&request);
    }
    // Untimed prefill backing; preempts (drops) tail requests if the
    // whole batch cannot fit, exactly like the serving loop would.
    ensureWithPreemption(decodePlan(), scratch);

    DecodeRun result;
    const TimeNs t0 = clock_.now();
    const u64 bytes0 = backend_->bytesInUse();
    const bool record = config_.record_iterations;
    i64 tokens = 0;
    for (int i = 0; i < iterations; ++i) {
        const TimeNs iter_start = clock_.now();
        runIteration(decodePlan(), scratch);
#if VATTN_AUDIT
        auditTick();
#endif
        tokens += static_cast<i64>(running_.size());
        const double ms =
            SimClock::toMillis(clock_.now() - iter_start);
        result.iter_ms.add(ms);
        if (record && !scratch.iterations.empty()) {
            result.iterations.push_back(scratch.iterations.back());
        }
    }
#if VATTN_AUDIT
    auditFinal();
#endif
    const double elapsed_s = SimClock::toSeconds(clock_.now() - t0);
    // Zero iterations leave the clock untouched; report 0, not 0/0.
    result.tokens_per_s =
        elapsed_s > 0 ? static_cast<double>(tokens) / elapsed_s : 0.0;
    const u64 bytes1 = backend_->bytesInUse();
    result.alloc_bytes_per_s =
        bytes1 > bytes0 && elapsed_s > 0
            ? static_cast<double>(bytes1 - bytes0) * config_.tp_degree /
                  elapsed_s
            : 0.0;
    result.mean_iter_ms = result.iter_ms.mean();
    result.effective_batch = static_cast<i64>(running_.size());
    result.preemptions = scratch.preemptions;

    // Tear the batch down; drop any requests preemption pushed back
    // into the queue or onto the host tier (they point into this
    // frame's storage). freeSlot on a swapped slot discards its stash.
    while (!running_.empty()) {
        Request *request = running_.back();
        running_.pop_back();
        backend_->freeSlot(request->slot);
    }
    while (scheduler_.hasSwapped()) {
        Request *request = scheduler_.frontSwapped();
        scheduler_.popFrontSwapped();
        backend_->freeSlot(request->slot);
    }
    scheduler_.clearWaiting();
    return result;
}

Engine::PrefillRun
Engine::prefillOnce(i64 ctx)
{
    auto slot = backend_->allocSlot();
    panic_if(!slot.isOk(), "prefillOnce: no slot available");

    PrefillRun result;
    ActiveLens active{{slot.value(), ctx}};
    auto mem = backend_->ensure(active);
    panic_if(!mem.isOk(), "prefillOnce: prompt does not fit");
    result.mem_ns = mem.value();
    result.attention_ns =
        kernel_.chunkedPrefillAttentionWindowed(config_.backend, ctx,
                                                ctx);
    result.linear_ns = kernel_.prefillLinear(ctx);
    result.comm_ns = kernel_.commTime(ctx);
    const i64 new_blocks = blocksFor(ctx, block_size_);
    result.cpu_ns = overhead_.prefillCpu(config_.backend, 1, new_blocks);
    result.total_ns = result.mem_ns + result.attention_ns +
                      result.linear_ns + result.comm_ns + result.cpu_ns;

    backend_->computeWindow(result.attention_ns + result.linear_ns);
    clock_.advance(result.total_ns);
    backend_->freeSlot(slot.value());
    return result;
}

} // namespace vattn::serving
