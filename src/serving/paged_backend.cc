#include "serving/paged_backend.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace vattn::serving
{

PagedBackend::PagedBackend(const perf::ModelSpec &model, int tp,
                           i64 block_size, u64 budget_bytes,
                           bool enable_prefix_caching,
                           u64 host_swap_bytes, perf::PcieSpec pcie)
    : bytes_per_block_(model.kvBytesPerTokenPerWorker(tp) *
                       static_cast<u64>(block_size)),
      budget_bytes_(budget_bytes),
      pcie_(std::move(pcie)),
      manager_(static_cast<i64>(budget_bytes / bytes_per_block_),
               block_size, enable_prefix_caching,
               static_cast<i64>(host_swap_bytes / bytes_per_block_))
{
}

bool
PagedBackend::canAdmit(i64 uncached_tokens) const
{
    // Reserve one block of headroom per running request so the next
    // decode iteration cannot immediately OOM (vLLM's watermark).
    // Evictable cached blocks count as capacity: allocation reclaims
    // them transparently.
    const i64 need = manager_.blocksFor(uncached_tokens) +
                     static_cast<i64>(slots_.size());
    return manager_.numAllocatable() >= need;
}

Result<int>
PagedBackend::allocSlot()
{
    const int slot = next_slot_++;
    slots_.emplace(slot,
                   Slot{paged::RequestBlocks(&manager_), {}, 0, {}});
    return slot;
}

i64
PagedBackend::matchPrefix(const PrefixKey &key) const
{
    if (!manager_.prefixCacheEnabled() || key.empty()) {
        return 0;
    }
    const auto hashes = key.chunkHashes(manager_.blockSize());
    i64 matched = 0;
    for (u64 hash : hashes) {
        if (manager_.lookupHash(hash) < 0) {
            break;
        }
        ++matched;
    }
    return matched * manager_.blockSize();
}

Result<SlotLease>
PagedBackend::allocSlot(const PrefixKey &key, i64 max_cached)
{
    auto slot = allocSlot();
    if (!slot.isOk()) {
        return Result<SlotLease>(slot.status());
    }
    SlotLease lease{slot.value(), 0, 0};
    if (!manager_.prefixCacheEnabled() || key.empty()) {
        return lease;
    }
    Slot &state = slots_.at(lease.slot);
    const i64 bs = manager_.blockSize();
    auto hashes = key.chunkHashes(bs);
    const auto shareable = static_cast<std::size_t>(
        std::min<i64>(static_cast<i64>(hashes.size()), max_cached / bs));
    for (std::size_t i = 0; i < shareable; ++i) {
        const i32 block = manager_.lookupHash(hashes[i]);
        if (block < 0) {
            break;
        }
        manager_.refSharedBlock(block).expectOk("prefix block ref");
        state.blocks.adoptBlock(block);
        state.hashes.push_back(hashes[i]);
        state.chain = hashes[i];
        lease.cached_tokens += bs;
        prefix_.aliased_bytes += bytes_per_block_;
    }
    // Sharing is refcount bookkeeping over the up-front committed
    // pool: no driver latency (the CPU cost rides the overhead model).
    return lease;
}

void
PagedBackend::registerPrefix(int slot, const PrefixKey &key, i64 tokens)
{
    if (!manager_.prefixCacheEnabled() || key.empty()) {
        return;
    }
    auto it = slots_.find(slot);
    panic_if(it == slots_.end(), "registerPrefix on unknown slot ",
             slot);
    Slot &state = it->second;
    const i64 bs = manager_.blockSize();
    const i64 full =
        std::min(tokens, key.size) / bs;
    while (static_cast<i64>(state.hashes.size()) < full) {
        const i64 index = static_cast<i64>(state.hashes.size());
        panic_if(index >=
                     static_cast<i64>(state.blocks.blocks().size()),
                 "registerPrefix beyond the slot's blocks");
        const u64 prev =
            state.hashes.empty() ? kPrefixHashSeed : state.chain;
        const u64 hash = key.rangeHash(prev, index * bs, bs);
        manager_.setBlockHash(state.blocks.blocks()[
                                  static_cast<std::size_t>(index)],
                              hash);
        state.hashes.push_back(hash);
        state.chain = hash;
    }
}

void
PagedBackend::freeSlot(int slot)
{
    auto it = slots_.find(slot);
    panic_if(it == slots_.end(), "freeSlot on unknown slot ", slot);
    // A slot freed while swapped out abandons its CPU blocks.
    for (const i32 cpu_block : it->second.cpu_blocks) {
        manager_.freeCpuBlock(cpu_block).expectOk("free CPU block");
    }
    // RequestBlocks dtor drops the references; hashed refcount-0
    // blocks park on the evictable LRU (the prefix cache), the rest
    // return to the free list.
    slots_.erase(it);
}

bool
PagedBackend::supportsSwap() const
{
    return manager_.numCpuBlocks() > 0;
}

bool
PagedBackend::canSwapOut(int slot) const
{
    auto it = slots_.find(slot);
    if (it == slots_.end() || it->second.swapped()) {
        return false;
    }
    const auto &blocks = it->second.blocks.blocks();
    if (blocks.empty() ||
        static_cast<i64>(blocks.size()) > manager_.numCpuFree()) {
        return false;
    }
    for (const i32 block : blocks) {
        if (manager_.refCount(block) != 1) {
            return false; // shared with another request: stays resident
        }
    }
    return true;
}

bool
PagedBackend::canSwapIn(int slot) const
{
    auto it = slots_.find(slot);
    if (it == slots_.end() || !it->second.swapped()) {
        return false;
    }
    // Mirror canAdmit's watermark: keep one block of headroom per
    // resident request so the next decode iteration cannot OOM.
    i64 resident = 0;
    for (const auto &[id, state] : slots_) {
        resident += state.swapped() ? 0 : 1;
    }
    return manager_.numAllocatable() >=
           static_cast<i64>(it->second.cpu_blocks.size()) + resident;
}

Result<SwapResult>
PagedBackend::swapOut(int slot)
{
    auto it = slots_.find(slot);
    if (it == slots_.end()) {
        return Result<SwapResult>(ErrorCode::kInvalidArgument,
                                  "unknown slot");
    }
    Slot &state = it->second;
    if (state.swapped()) {
        return Result<SwapResult>(ErrorCode::kFailedPrecondition,
                                  "slot already swapped out");
    }
    if (state.blocks.blocks().empty()) {
        return Result<SwapResult>(ErrorCode::kFailedPrecondition,
                                  "slot holds no blocks");
    }
    for (const i32 block : state.blocks.blocks()) {
        if (manager_.refCount(block) != 1) {
            return Result<SwapResult>(
                ErrorCode::kFailedPrecondition,
                "block shared with another request");
        }
    }
    if (static_cast<i64>(state.blocks.blocks().size()) >
        manager_.numCpuFree()) {
        return Result<SwapResult>(ErrorCode::kOutOfMemory,
                                  "CPU block pool full");
    }
    const std::vector<i32> blocks = state.blocks.releaseForSwap();
    state.cpu_blocks.reserve(blocks.size());
    for (const i32 block : blocks) {
        auto cpu_block = manager_.swapOutBlock(block);
        cpu_block.status().expectOk("swapOutBlock after checks");
        state.cpu_blocks.push_back(cpu_block.value());
    }
    // Swapping invalidates the slot's registered hashes (the manager
    // dropped them with the device blocks); prefill re-registers from
    // scratch if the request is ever re-run through registerPrefix.
    state.hashes.clear();
    state.chain = 0;
    const u64 swapped_bytes =
        static_cast<u64>(blocks.size()) * bytes_per_block_;
    return SwapResult{swapped_bytes, pcie_.dtohNs(swapped_bytes)};
}

Result<SwapResult>
PagedBackend::swapIn(int slot)
{
    auto it = slots_.find(slot);
    if (it == slots_.end()) {
        return Result<SwapResult>(ErrorCode::kInvalidArgument,
                                  "unknown slot");
    }
    Slot &state = it->second;
    if (!state.swapped()) {
        return Result<SwapResult>(ErrorCode::kFailedPrecondition,
                                  "slot not swapped out");
    }
    if (manager_.numAllocatable() <
        static_cast<i64>(state.cpu_blocks.size())) {
        return Result<SwapResult>(ErrorCode::kOutOfMemory,
                                  "device block pool full");
    }
    for (const i32 cpu_block : state.cpu_blocks) {
        auto block = manager_.swapInBlock(cpu_block);
        block.status().expectOk("swapInBlock after capacity check");
        state.blocks.adoptBlock(block.value());
    }
    const u64 swapped_bytes =
        static_cast<u64>(state.cpu_blocks.size()) * bytes_per_block_;
    state.cpu_blocks.clear();
    return SwapResult{swapped_bytes, pcie_.htodNs(swapped_bytes)};
}

u64
PagedBackend::slotPhysBytes(int slot) const
{
    auto it = slots_.find(slot);
    if (it == slots_.end()) {
        return 0;
    }
    return static_cast<u64>(it->second.blocks.blocks().size()) *
           bytes_per_block_;
}

Result<TimeNs>
PagedBackend::ensure(const ActiveLens &active)
{
    for (const auto &[slot, len] : active) {
        auto it = slots_.find(slot);
        panic_if(it == slots_.end(), "ensure on unknown slot ", slot);
        auto status = it->second.blocks.ensureTokens(len);
        if (!status.isOk()) {
            return Result<TimeNs>(status);
        }
    }
    // Block allocation is CPU-side list manipulation over memory that
    // was committed at startup: no driver latency on this path.
    return TimeNs{0};
}

void
PagedBackend::computeWindow(TimeNs window_ns)
{
    (void)window_ns; // nothing to overlap
}

void
PagedBackend::auditInto(audit::AuditReport &report) const
{
    manager_.auditInto(report);
    // Slot-side cross-checks: this backend's slots are the only block
    // holders, so the references they hold must account for every
    // refcount in the manager, and swapped slots must own every CPU
    // block in use.
    i64 held = 0;
    i64 cpu_held = 0;
    for (const auto &[slot, state] : slots_) {
        for (const i32 block : state.blocks.blocks()) {
            if (manager_.refCount(block) < 1) {
                report.fail("paged_backend: slot ", slot,
                            " holds block ", block, " with refcount ",
                            manager_.refCount(block),
                            " (freed while still held)");
            }
            ++held;
        }
        cpu_held += static_cast<i64>(state.cpu_blocks.size());
        if (state.swapped() && !state.blocks.blocks().empty()) {
            report.fail("paged_backend: swapped slot ", slot,
                        " still holds ", state.blocks.blocks().size(),
                        " device blocks");
        }
    }
    report.check(held == manager_.totalRefCount(),
                 "paged_backend: slots hold ", held,
                 " device-block references but the manager counts ",
                 manager_.totalRefCount(),
                 " (a reference leaked outside the slots)");
    report.check(cpu_held == manager_.numCpuInUse(),
                 "paged_backend: slots own ", cpu_held,
                 " CPU blocks but the manager has ",
                 manager_.numCpuInUse(), " in use");
    report.check(bytesInUse() <= budgetBytes(),
                 "paged_backend: ", bytesInUse(),
                 " bytes in use exceed the ", budgetBytes(),
                 "-byte budget");
}

u64
PagedBackend::bytesInUse() const
{
    // Evictable cached blocks are reclaimable capacity, not live use.
    return static_cast<u64>(manager_.numLive()) * bytes_per_block_;
}

u64
PagedBackend::budgetBytes() const
{
    return budget_bytes_;
}

i64
PagedBackend::blocksHeld(int slot) const
{
    auto it = slots_.find(slot);
    panic_if(it == slots_.end(), "blocksHeld on unknown slot ", slot);
    return static_cast<i64>(it->second.blocks.blocks().size());
}

} // namespace vattn::serving
