#include "serving/paged_backend.hh"

#include "common/logging.hh"

namespace vattn::serving
{

PagedBackend::PagedBackend(const perf::ModelSpec &model, int tp,
                           i64 block_size, u64 budget_bytes)
    : bytes_per_block_(model.kvBytesPerTokenPerWorker(tp) *
                       static_cast<u64>(block_size)),
      budget_bytes_(budget_bytes),
      manager_(static_cast<i64>(budget_bytes / bytes_per_block_),
               block_size)
{
}

bool
PagedBackend::canAdmit(i64 prompt_tokens) const
{
    // Reserve one block of headroom per running request so the next
    // decode iteration cannot immediately OOM (vLLM's watermark).
    const i64 need = manager_.blocksFor(prompt_tokens) +
                     static_cast<i64>(slots_.size());
    return manager_.numFree() >= need;
}

Result<int>
PagedBackend::allocSlot()
{
    const int slot = next_slot_++;
    slots_.emplace(slot, paged::RequestBlocks(&manager_));
    return slot;
}

void
PagedBackend::freeSlot(int slot)
{
    auto it = slots_.find(slot);
    panic_if(it == slots_.end(), "freeSlot on unknown slot ", slot);
    slots_.erase(it); // RequestBlocks dtor releases the blocks
}

Result<TimeNs>
PagedBackend::ensure(const ActiveLens &active)
{
    for (const auto &[slot, len] : active) {
        auto it = slots_.find(slot);
        panic_if(it == slots_.end(), "ensure on unknown slot ", slot);
        auto status = it->second.ensureTokens(len);
        if (!status.isOk()) {
            return Result<TimeNs>(status);
        }
    }
    // Block allocation is CPU-side list manipulation over memory that
    // was committed at startup: no driver latency on this path.
    return TimeNs{0};
}

void
PagedBackend::computeWindow(TimeNs window_ns)
{
    (void)window_ns; // nothing to overlap
}

u64
PagedBackend::bytesInUse() const
{
    return static_cast<u64>(manager_.numAllocated()) * bytes_per_block_;
}

u64
PagedBackend::budgetBytes() const
{
    return budget_bytes_;
}

i64
PagedBackend::blocksHeld(int slot) const
{
    auto it = slots_.find(slot);
    panic_if(it == slots_.end(), "blocksHeld on unknown slot ", slot);
    return static_cast<i64>(it->second.blocks().size());
}

} // namespace vattn::serving
