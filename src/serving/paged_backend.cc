#include "serving/paged_backend.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace vattn::serving
{

PagedBackend::PagedBackend(const perf::ModelSpec &model, int tp,
                           i64 block_size, u64 budget_bytes,
                           bool enable_prefix_caching,
                           u64 host_swap_bytes, perf::PcieSpec pcie)
    : budget_bytes_(budget_bytes), pcie_(std::move(pcie))
{
    fatal_if(tp <= 0, "PagedBackend needs tp >= 1");
    fatal_if(model.hasSlidingLayers() && enable_prefix_caching,
             "paged prefix caching hashes whole-model blocks and is "
             "not supported with sliding-window layers (vLLM's "
             "hash-block scheme has the same restriction); disable "
             "one of the two");
    const auto classes = model.windowClasses();
    workers_.resize(static_cast<std::size_t>(tp));
    for (WorkerPool &pool : workers_) {
        pool.groups.reserve(classes.size());
        for (const perf::ModelSpec::WindowClass &cls : classes) {
            // Per-token bytes of this class's layers on one worker;
            // the uniform single class reproduces
            // kvBytesPerTokenPerWorker (including its integer
            // division) exactly.
            const u64 class_token_bytes =
                2ULL * static_cast<u64>(cls.layers) *
                static_cast<u64>(model.num_kv_heads) *
                static_cast<u64>(model.head_dim) *
                static_cast<u64>(model.bytes_per_elem) /
                static_cast<u64>(tp);
            const u64 bytes_per_block =
                class_token_bytes * static_cast<u64>(block_size);
            const u64 budget_share =
                budget_bytes * static_cast<u64>(cls.layers) /
                static_cast<u64>(model.num_layers);
            const u64 host_share =
                host_swap_bytes * static_cast<u64>(cls.layers) /
                static_cast<u64>(model.num_layers);
            pool.groups.push_back(LayerGroup{
                cls.window_tokens, cls.layers, bytes_per_block,
                paged::BlockManager(
                    static_cast<i64>(budget_share / bytes_per_block),
                    block_size, enable_prefix_caching,
                    static_cast<i64>(host_share / bytes_per_block))});
        }
    }
}

i64
PagedBackend::WorkerPool::deadLeadBlocks(const LayerGroup &group,
                                         i64 tokens) const
{
    if (group.window_tokens <= 0 || tokens <= group.window_tokens) {
        return 0;
    }
    // Only blocks fully behind the window die; the straddled block
    // stays (floor division).
    return (tokens - group.window_tokens) / group.manager.blockSize();
}

bool
PagedBackend::WorkerPool::canAdmit(i64 uncached_tokens) const
{
    // Reserve one block of headroom per running request so the next
    // decode iteration cannot immediately OOM (vLLM's watermark).
    // Evictable cached blocks count as capacity: allocation reclaims
    // them transparently. Every window class must fit: a sliding
    // group only ever holds the live window of blocks.
    for (const LayerGroup &group : groups) {
        const i64 need = group.manager.blocksFor(uncached_tokens) -
                         deadLeadBlocks(group, uncached_tokens) +
                         static_cast<i64>(slots.size());
        if (group.manager.numAllocatable() < need) {
            return false;
        }
    }
    return true;
}

int
PagedBackend::WorkerPool::allocSlot()
{
    const int slot = next_slot++;
    Slot state;
    state.blocks.reserve(groups.size());
    for (LayerGroup &group : groups) {
        state.blocks.emplace_back(&group.manager);
    }
    state.cpu_blocks.resize(groups.size());
    state.swap_leads.assign(groups.size(), 0);
    slots.emplace(slot, std::move(state));
    return slot;
}

i64
PagedBackend::WorkerPool::matchPrefix(const PrefixKey &key) const
{
    const paged::BlockManager &manager = groups[0].manager;
    if (!manager.prefixCacheEnabled() || key.empty()) {
        return 0;
    }
    const auto hashes = key.chunkHashes(manager.blockSize());
    i64 matched = 0;
    for (u64 hash : hashes) {
        if (manager.lookupHash(hash) < 0) {
            break;
        }
        ++matched;
    }
    return matched * manager.blockSize();
}

SlotLease
PagedBackend::WorkerPool::adoptPrefix(int slot, const PrefixKey &key,
                                      i64 max_cached)
{
    SlotLease lease{slot, 0, 0};
    paged::BlockManager &manager = groups[0].manager;
    if (!manager.prefixCacheEnabled() || key.empty()) {
        return lease;
    }
    Slot &state = slots.at(slot);
    const i64 bs = manager.blockSize();
    auto hashes = key.chunkHashes(bs);
    const auto shareable = static_cast<std::size_t>(
        std::min<i64>(static_cast<i64>(hashes.size()), max_cached / bs));
    for (std::size_t i = 0; i < shareable; ++i) {
        const i32 block = manager.lookupHash(hashes[i]);
        if (block < 0) {
            break;
        }
        manager.refSharedBlock(block).expectOk("prefix block ref");
        state.blocks[0].adoptBlock(block);
        state.hashes.push_back(hashes[i]);
        state.chain = hashes[i];
        lease.cached_tokens += bs;
        prefix.aliased_bytes += groups[0].bytes_per_block;
    }
    // Sharing is refcount bookkeeping over the up-front committed
    // pool: no driver latency (the CPU cost rides the overhead model).
    return lease;
}

void
PagedBackend::WorkerPool::registerPrefix(int slot, const PrefixKey &key,
                                         i64 tokens)
{
    paged::BlockManager &manager = groups[0].manager;
    if (!manager.prefixCacheEnabled() || key.empty()) {
        return;
    }
    auto it = slots.find(slot);
    panic_if(it == slots.end(), "registerPrefix on unknown slot ",
             slot);
    Slot &state = it->second;
    const auto &blocks = state.blocks[0].blocks();
    const i64 bs = manager.blockSize();
    const i64 full = std::min(tokens, key.size) / bs;
    while (static_cast<i64>(state.hashes.size()) < full) {
        const i64 index = static_cast<i64>(state.hashes.size());
        panic_if(index >= static_cast<i64>(blocks.size()),
                 "registerPrefix beyond the slot's blocks");
        const u64 prev =
            state.hashes.empty() ? kPrefixHashSeed : state.chain;
        const u64 hash = key.rangeHash(prev, index * bs, bs);
        manager.setBlockHash(blocks[static_cast<std::size_t>(index)],
                             hash);
        state.hashes.push_back(hash);
        state.chain = hash;
    }
}

void
PagedBackend::WorkerPool::freeSlot(int slot)
{
    auto it = slots.find(slot);
    panic_if(it == slots.end(), "freeSlot on unknown slot ", slot);
    // A slot freed while swapped out abandons its CPU blocks.
    for (std::size_t g = 0; g < groups.size(); ++g) {
        for (const i32 cpu_block : it->second.cpu_blocks[g]) {
            groups[g].manager.freeCpuBlock(cpu_block).expectOk(
                "free CPU block");
        }
    }
    // RequestBlocks dtor drops the references; hashed refcount-0
    // blocks park on the evictable LRU (the prefix cache), the rest
    // return to the free list.
    slots.erase(it);
}

Status
PagedBackend::WorkerPool::ensureSlot(int slot, i64 len)
{
    auto it = slots.find(slot);
    panic_if(it == slots.end(), "ensure on unknown slot ", slot);
    for (std::size_t g = 0; g < groups.size(); ++g) {
        // Free dead leading blocks before growing so a tight pool
        // benefits from the reclaimed blocks in the same call.
        if (groups[g].window_tokens > 0) {
            it->second.blocks[g].advanceLeadTo(
                deadLeadBlocks(groups[g], len));
        }
        auto status = it->second.blocks[g].ensureTokens(len);
        if (!status.isOk()) {
            return status;
        }
    }
    return Status::ok();
}

bool
PagedBackend::WorkerPool::canSwapOut(int slot) const
{
    auto it = slots.find(slot);
    if (it == slots.end() || it->second.swapped()) {
        return false;
    }
    i64 live_total = 0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        const auto &list = it->second.blocks[g];
        live_total += list.liveBlockCount();
        if (list.liveBlockCount() > groups[g].manager.numCpuFree()) {
            return false;
        }
        for (const i32 block : list.blocks()) {
            if (block == paged::RequestBlocks::kNoBlock) {
                continue;
            }
            if (groups[g].manager.refCount(block) != 1) {
                return false; // shared: stays resident
            }
        }
    }
    return live_total > 0;
}

bool
PagedBackend::WorkerPool::canSwapIn(int slot) const
{
    auto it = slots.find(slot);
    if (it == slots.end() || !it->second.swapped()) {
        return false;
    }
    // Mirror canAdmit's watermark: keep one block of headroom per
    // resident request so the next decode iteration cannot OOM.
    i64 resident = 0;
    for (const auto &[id, state] : slots) {
        resident += state.swapped() ? 0 : 1;
    }
    for (std::size_t g = 0; g < groups.size(); ++g) {
        if (groups[g].manager.numAllocatable() <
            static_cast<i64>(it->second.cpu_blocks[g].size()) +
                resident) {
            return false;
        }
    }
    return true;
}

Result<u64>
PagedBackend::WorkerPool::swapOutSlot(int slot)
{
    auto it = slots.find(slot);
    if (it == slots.end()) {
        return Result<u64>(ErrorCode::kInvalidArgument,
                           "unknown slot");
    }
    Slot &state = it->second;
    if (state.swapped()) {
        return Result<u64>(ErrorCode::kFailedPrecondition,
                           "slot already swapped out");
    }
    i64 live_total = 0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        live_total += state.blocks[g].liveBlockCount();
        for (const i32 block : state.blocks[g].blocks()) {
            if (block == paged::RequestBlocks::kNoBlock) {
                continue;
            }
            if (groups[g].manager.refCount(block) != 1) {
                return Result<u64>(
                    ErrorCode::kFailedPrecondition,
                    "block shared with another request");
            }
        }
        if (state.blocks[g].liveBlockCount() >
            groups[g].manager.numCpuFree()) {
            return Result<u64>(ErrorCode::kOutOfMemory,
                               "CPU block pool full");
        }
    }
    if (live_total == 0) {
        return Result<u64>(ErrorCode::kFailedPrecondition,
                           "slot holds no blocks");
    }
    u64 swapped_bytes = 0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        state.swap_leads[g] = state.blocks[g].lead();
        const std::vector<i32> blocks =
            state.blocks[g].releaseForSwap();
        state.cpu_blocks[g].reserve(blocks.size());
        for (const i32 block : blocks) {
            if (block == paged::RequestBlocks::kNoBlock) {
                continue;
            }
            auto cpu_block = groups[g].manager.swapOutBlock(block);
            cpu_block.status().expectOk("swapOutBlock after checks");
            state.cpu_blocks[g].push_back(cpu_block.value());
        }
        swapped_bytes += static_cast<u64>(state.cpu_blocks[g].size()) *
                         groups[g].bytes_per_block;
    }
    // Swapping invalidates the slot's registered hashes (the manager
    // dropped them with the device blocks); prefill re-registers from
    // scratch if the request is ever re-run through registerPrefix.
    state.hashes.clear();
    state.chain = 0;
    return swapped_bytes;
}

Result<u64>
PagedBackend::WorkerPool::swapInSlot(int slot)
{
    auto it = slots.find(slot);
    if (it == slots.end()) {
        return Result<u64>(ErrorCode::kInvalidArgument,
                           "unknown slot");
    }
    Slot &state = it->second;
    if (!state.swapped()) {
        return Result<u64>(ErrorCode::kFailedPrecondition,
                           "slot not swapped out");
    }
    for (std::size_t g = 0; g < groups.size(); ++g) {
        if (groups[g].manager.numAllocatable() <
            static_cast<i64>(state.cpu_blocks[g].size())) {
            return Result<u64>(ErrorCode::kOutOfMemory,
                               "device block pool full");
        }
    }
    u64 swapped_bytes = 0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        // Restore the dead-lead boundary first so the revived table
        // keeps absolute indexing for the window layers.
        state.blocks[g].advanceLeadTo(state.swap_leads[g]);
        for (const i32 cpu_block : state.cpu_blocks[g]) {
            auto block = groups[g].manager.swapInBlock(cpu_block);
            block.status().expectOk("swapInBlock after capacity check");
            state.blocks[g].adoptBlock(block.value());
        }
        swapped_bytes += static_cast<u64>(state.cpu_blocks[g].size()) *
                         groups[g].bytes_per_block;
        state.cpu_blocks[g].clear();
        state.swap_leads[g] = 0;
    }
    return swapped_bytes;
}

Result<u64>
PagedBackend::WorkerPool::exportSlot(int slot, SwappedKvImage &image)
{
    auto it = slots.find(slot);
    if (it == slots.end()) {
        return Result<u64>(ErrorCode::kInvalidArgument,
                           "unknown slot");
    }
    Slot &state = it->second;
    if (!state.swapped()) {
        return Result<u64>(ErrorCode::kFailedPrecondition,
                           "only swapped-out slots can export");
    }
    // The image carries the per-group block counts and dead-lead
    // boundaries; the CPU blocks themselves return to this worker's
    // pool — logically their payload moves to the adopter's host pool
    // (same node, modeled zero-copy).
    image.group_blocks.assign(groups.size(), 0);
    image.group_leads.assign(groups.size(), 0);
    u64 bytes = 0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        image.group_blocks[g] =
            static_cast<i64>(state.cpu_blocks[g].size());
        image.group_leads[g] = state.swap_leads[g];
        bytes += static_cast<u64>(state.cpu_blocks[g].size()) *
                 groups[g].bytes_per_block;
    }
    // freeSlot releases the CPU blocks and drops the (empty, already
    // released at swap-out) device block lists.
    freeSlot(slot);
    image.bytes = bytes;
    return bytes;
}

bool
PagedBackend::WorkerPool::canImportImage(
    const SwappedKvImage &image) const
{
    if (image.group_blocks.size() != groups.size()) {
        return false; // geometry mismatch: different window classes
    }
    for (std::size_t g = 0; g < groups.size(); ++g) {
        if (groups[g].manager.numCpuFree() < image.group_blocks[g]) {
            return false;
        }
    }
    return true;
}

Result<int>
PagedBackend::WorkerPool::importImage(const SwappedKvImage &image)
{
    if (!canImportImage(image)) {
        return Result<int>(ErrorCode::kOutOfMemory,
                           "host pool cannot hold the imported image");
    }
    const int slot = allocSlot();
    Slot &state = slots.at(slot);
    for (std::size_t g = 0; g < groups.size(); ++g) {
        state.swap_leads[g] = image.group_leads[g];
        state.cpu_blocks[g].reserve(
            static_cast<std::size_t>(image.group_blocks[g]));
        for (i64 b = 0; b < image.group_blocks[g]; ++b) {
            auto cpu_block = groups[g].manager.acquireCpuBlock();
            cpu_block.status().expectOk(
                "acquireCpuBlock after capacity check");
            state.cpu_blocks[g].push_back(cpu_block.value());
        }
    }
    // The slot is born swapped-out: the regular swapIn path revives
    // it (advanceLeadTo restores the window boundary, adoptBlock the
    // device residency).
    return slot;
}

u64
PagedBackend::WorkerPool::slotPhysBytes(int slot) const
{
    auto it = slots.find(slot);
    if (it == slots.end()) {
        return 0;
    }
    u64 bytes = 0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        bytes += static_cast<u64>(it->second.blocks[g].liveBlockCount()) *
                 groups[g].bytes_per_block;
    }
    return bytes;
}

u64
PagedBackend::WorkerPool::bytesInUse() const
{
    // Evictable cached blocks are reclaimable capacity, not live use.
    u64 bytes = 0;
    for (const LayerGroup &group : groups) {
        bytes += static_cast<u64>(group.manager.numLive()) *
                 group.bytes_per_block;
    }
    return bytes;
}

i64
PagedBackend::WorkerPool::blocksHeld(int slot) const
{
    auto it = slots.find(slot);
    panic_if(it == slots.end(), "blocksHeld on unknown slot ", slot);
    i64 held = 0;
    for (const auto &list : it->second.blocks) {
        held += list.liveBlockCount();
    }
    return held;
}

void
PagedBackend::WorkerPool::auditInto(audit::AuditReport &report,
                                    std::size_t worker) const
{
    for (const LayerGroup &group : groups) {
        group.manager.auditInto(report);
    }
    // Slot-side cross-checks: this worker's slots are the only block
    // holders, so the references they hold must account for every
    // refcount in each group's manager, and swapped slots must own
    // every CPU block in use.
    std::vector<i64> held(groups.size(), 0);
    std::vector<i64> cpu_held(groups.size(), 0);
    for (const auto &[slot, state] : slots) {
        i64 live_total = 0;
        for (std::size_t g = 0; g < groups.size(); ++g) {
            const auto &list = state.blocks[g];
            for (std::size_t i = 0; i < list.blocks().size(); ++i) {
                const i32 block = list.blocks()[i];
                if (block == paged::RequestBlocks::kNoBlock) {
                    if (static_cast<i64>(i) >= list.lead()) {
                        report.fail("paged_backend: worker ", worker,
                                    " slot ", slot, " group ", g,
                                    " has a hole at live index ", i,
                                    " (kNoBlock past the lead)");
                    }
                    continue;
                }
                if (static_cast<i64>(i) < list.lead()) {
                    report.fail(
                        "paged_backend: worker ", worker, " slot ",
                        slot, " group ", g, " still holds block ",
                        block, " inside the dead window lead [0, ",
                        list.lead(),
                        ") — a rogue window-tail block survived "
                        "eviction");
                }
                if (groups[g].manager.refCount(block) < 1) {
                    report.fail("paged_backend: worker ", worker,
                                " slot ", slot, " holds block ", block,
                                " with refcount ",
                                groups[g].manager.refCount(block),
                                " (freed while still held)");
                }
                ++held[g];
                ++live_total;
            }
            cpu_held[g] +=
                static_cast<i64>(state.cpu_blocks[g].size());
        }
        if (state.swapped() && live_total > 0) {
            report.fail("paged_backend: worker ", worker,
                        " swapped slot ", slot, " still holds ",
                        live_total, " device blocks");
        }
    }
    for (std::size_t g = 0; g < groups.size(); ++g) {
        report.check(held[g] == groups[g].manager.totalRefCount(),
                     "paged_backend: worker ", worker, " group ", g,
                     " slots hold ", held[g],
                     " device-block references but the manager "
                     "counts ",
                     groups[g].manager.totalRefCount(),
                     " (a reference leaked outside the slots)");
        report.check(cpu_held[g] == groups[g].manager.numCpuInUse(),
                     "paged_backend: worker ", worker, " group ", g,
                     " slots own ", cpu_held[g],
                     " CPU blocks but the manager has ",
                     groups[g].manager.numCpuInUse(), " in use");
    }
}

bool
PagedBackend::canAdmit(i64 uncached_tokens) const
{
    return workers_[0].canAdmit(uncached_tokens);
}

Result<int>
PagedBackend::allocSlot()
{
    const int first = workers_[0].allocSlot();
    for (std::size_t w = 1; w < workers_.size(); ++w) {
        const int other = workers_[w].allocSlot();
        panic_if(other != first, "TP workers diverged in allocSlot");
    }
    return first;
}

i64
PagedBackend::matchPrefix(const PrefixKey &key) const
{
    return workers_[0].matchPrefix(key);
}

Result<SlotLease>
PagedBackend::allocSlot(const PrefixKey &key, i64 max_cached)
{
    auto slot = allocSlot();
    if (!slot.isOk()) {
        return Result<SlotLease>(slot.status());
    }
    SlotLease first =
        workers_[0].adoptPrefix(slot.value(), key, max_cached);
    for (std::size_t w = 1; w < workers_.size(); ++w) {
        const SlotLease other =
            workers_[w].adoptPrefix(slot.value(), key, max_cached);
        panic_if(other.cached_tokens != first.cached_tokens,
                 "TP workers diverged in prefix adoption");
    }
    return first;
}

void
PagedBackend::registerPrefix(int slot, const PrefixKey &key, i64 tokens)
{
    for (WorkerPool &pool : workers_) {
        pool.registerPrefix(slot, key, tokens);
    }
}

void
PagedBackend::freeSlot(int slot)
{
    for (WorkerPool &pool : workers_) {
        pool.freeSlot(slot);
    }
}

bool
PagedBackend::supportsSwap() const
{
    return workers_[0].groups[0].manager.numCpuBlocks() > 0;
}

bool
PagedBackend::canSwapOut(int slot) const
{
    return workers_[0].canSwapOut(slot);
}

bool
PagedBackend::canSwapIn(int slot) const
{
    return workers_[0].canSwapIn(slot);
}

Result<SwapResult>
PagedBackend::swapOut(int slot)
{
    auto first = workers_[0].swapOutSlot(slot);
    for (std::size_t w = 1; w < workers_.size(); ++w) {
        auto other = workers_[w].swapOutSlot(slot);
        panic_if(other.isOk() != first.isOk() ||
                     (first.isOk() && other.value() != first.value()),
                 "TP workers diverged in swapOut");
    }
    if (!first.isOk()) {
        return Result<SwapResult>(first.status());
    }
    // Each worker copies its own shard concurrently, so the group's
    // swap latency is one worker's.
    return SwapResult{first.value(), pcie_.dtohNs(first.value())};
}

Result<SwapResult>
PagedBackend::swapIn(int slot)
{
    auto first = workers_[0].swapInSlot(slot);
    for (std::size_t w = 1; w < workers_.size(); ++w) {
        auto other = workers_[w].swapInSlot(slot);
        panic_if(other.isOk() != first.isOk() ||
                     (first.isOk() && other.value() != first.value()),
                 "TP workers diverged in swapIn");
    }
    if (!first.isOk()) {
        return Result<SwapResult>(first.status());
    }
    return SwapResult{first.value(), pcie_.htodNs(first.value())};
}

u64
PagedBackend::slotPhysBytes(int slot) const
{
    return workers_[0].slotPhysBytes(slot);
}

Result<SwappedKvImage>
PagedBackend::exportSwapped(int slot)
{
    // Per-worker shards export in lockstep; the image records one
    // worker's counts and per-worker bytes (the shards are identical
    // — the same convention SwapResult::bytes uses).
    SwappedKvImage image;
    auto first = workers_[0].exportSlot(slot, image);
    for (std::size_t w = 1; w < workers_.size(); ++w) {
        SwappedKvImage other_image;
        auto other = workers_[w].exportSlot(slot, other_image);
        panic_if(other.isOk() != first.isOk() ||
                     (first.isOk() && other.value() != first.value()),
                 "TP workers diverged in exportSwapped");
    }
    if (!first.isOk()) {
        return Result<SwappedKvImage>(first.status());
    }
    return image;
}

bool
PagedBackend::canImportSwapped(const SwappedKvImage &image) const
{
    return supportsSwap() && !image.group_blocks.empty() &&
           workers_[0].canImportImage(image);
}

Result<int>
PagedBackend::importSwapped(const SwappedKvImage &image)
{
    if (image.group_blocks.empty()) {
        return Result<int>(ErrorCode::kInvalidArgument,
                           "not a paged-backend image");
    }
    auto first = workers_[0].importImage(image);
    for (std::size_t w = 1; w < workers_.size(); ++w) {
        auto other = workers_[w].importImage(image);
        panic_if(other.isOk() != first.isOk() ||
                     (first.isOk() && other.value() != first.value()),
                 "TP workers diverged in importSwapped");
    }
    return first;
}

Result<TimeNs>
PagedBackend::ensure(const ActiveLens &active)
{
    for (const auto &[slot, len] : active) {
        Status first = workers_[0].ensureSlot(slot, len);
        for (std::size_t w = 1; w < workers_.size(); ++w) {
            Status other = workers_[w].ensureSlot(slot, len);
            panic_if(!(other == first),
                     "TP workers diverged in ensure");
        }
        if (!first.isOk()) {
            return Result<TimeNs>(first);
        }
    }
    // Block allocation is CPU-side list manipulation over memory that
    // was committed at startup: no driver latency on this path.
    return TimeNs{0};
}

void
PagedBackend::computeWindow(TimeNs window_ns)
{
    (void)window_ns; // nothing to overlap
}

void
PagedBackend::auditInto(audit::AuditReport &report) const
{
    for (std::size_t w = 0; w < workers_.size(); ++w) {
        workers_[w].auditInto(report, w);
    }
    const WorkerPool &reference = workers_[0];
    report.check(reference.bytesInUse() <= budgetBytes(),
                 "paged_backend: ", reference.bytesInUse(),
                 " bytes in use exceed the ", budgetBytes(),
                 "-byte budget");
    // Cross-worker state equality: every control input was identical
    // and the pool logic is deterministic, so any divergence means one
    // worker's bookkeeping drifted — localize it by worker, group and
    // slot so the failure is actionable.
    for (std::size_t w = 1; w < workers_.size(); ++w) {
        const WorkerPool &other = workers_[w];
        report.check(other.slots.size() == reference.slots.size(),
                     "paged_backend: worker ", w, " tracks ",
                     other.slots.size(), " slots but worker 0 tracks ",
                     reference.slots.size(), " (lockstep divergence)");
        for (std::size_t g = 0; g < reference.groups.size(); ++g) {
            report.check(other.groups[g].manager.numLive() ==
                             reference.groups[g].manager.numLive(),
                         "paged_backend: worker ", w, " group ", g,
                         " has ", other.groups[g].manager.numLive(),
                         " live blocks but worker 0 has ",
                         reference.groups[g].manager.numLive(),
                         " (lockstep divergence)");
            report.check(other.groups[g].manager.numCpuInUse() ==
                             reference.groups[g].manager.numCpuInUse(),
                         "paged_backend: worker ", w, " group ", g,
                         " uses ",
                         other.groups[g].manager.numCpuInUse(),
                         " CPU blocks but worker 0 uses ",
                         reference.groups[g].manager.numCpuInUse(),
                         " (lockstep divergence)");
        }
        for (const auto &[slot, state] : reference.slots) {
            auto it = other.slots.find(slot);
            if (it == other.slots.end()) {
                report.fail("paged_backend: worker ", w,
                            " is missing slot ", slot,
                            " that worker 0 tracks — a worker's "
                            "sequence state desynced from the group");
                continue;
            }
            report.check(
                other.blocksHeld(slot) == reference.blocksHeld(slot),
                "paged_backend: worker ", w, " slot ", slot, " holds ",
                other.blocksHeld(slot), " blocks but worker 0 holds ",
                reference.blocksHeld(slot),
                " — a worker's sequence state desynced from the group");
            report.check(it->second.swapped() == state.swapped(),
                         "paged_backend: worker ", w, " slot ", slot,
                         " disagrees with worker 0 on swap residency "
                         "(lockstep divergence)");
        }
    }
}

u64
PagedBackend::bytesInUse() const
{
    // Per-worker shard bytes (workers are symmetric): the engine's
    // budget and admission math are per worker throughout.
    return workers_[0].bytesInUse();
}

u64
PagedBackend::budgetBytes() const
{
    return budget_bytes_;
}

i64
PagedBackend::blocksHeld(int slot) const
{
    return workers_[0].blocksHeld(slot);
}

} // namespace vattn::serving
