/**
 * @file
 * Scheduling layer: the FCFS waiting queue (Scheduler) plus the
 * BatchComposer that turns queue + running set into an IterationPlan
 * for the engine. Two composition policies reproduce the paper's
 * serving harnesses:
 *
 *  - kPrefillPrioritized: the vLLM v0.2.7 policy (§7): prefills are
 *    prioritized whenever waiting requests fit in memory, multiple
 *    prompts share a monolithic prefill iteration up to a token
 *    budget, and decode iterations run the whole running set. Ongoing
 *    decodes therefore stall for entire prefill iterations.
 *  - kStallFreeChunked: Sarathi-style chunked-prefill hybrid batching
 *    (the harness of the paper's §7 serving evaluation): every
 *    iteration carries all ongoing decodes, and prompts are split
 *    into chunks that fill the leftover per-iteration token budget in
 *    FCFS order, so a long prompt never stalls running decodes.
 *
 * On OOM the engine preempts the most recently admitted request with
 * recomputation (both modes).
 */

#ifndef VATTN_SERVING_SCHEDULER_HH
#define VATTN_SERVING_SCHEDULER_HH

#include <functional>
#include <vector>

#include "common/ring_deque.hh"
#include "serving/request.hh"

namespace vattn::serving
{

/** Iteration-composition policy of the BatchComposer. */
enum class SchedulingMode : u8
{
    /** Monolithic prefill-only or decode-only iterations (vLLM
     *  v0.2.7); bit-for-bit the engine's historical behaviour. */
    kPrefillPrioritized,
    /** Chunked-prefill hybrid batching: decodes always ride along,
     *  prompts fill the leftover token budget in FCFS chunk order. */
    kStallFreeChunked,
};

const char *toString(SchedulingMode mode);

/** One prompt's share of an iteration's prefill work. */
struct PrefillChunk
{
    Request *request = nullptr;
    /** Query tokens this iteration (the chunk length). */
    i64 tokens = 0;
    /** First chunk of the prompt: the engine must allocate a slot. */
    bool first_chunk = false;
};

/**
 * What one engine iteration computes: a set of decode requests (one
 * token each) plus a set of prefill chunks, composed under the token
 * budget. Either side may be empty; kPrefillPrioritized never fills
 * both.
 */
struct IterationPlan
{
    std::vector<PrefillChunk> prefills;
    std::vector<Request *> decodes;

    bool empty() const { return prefills.empty() && decodes.empty(); }
    bool mixed() const { return !prefills.empty() && !decodes.empty(); }
    /** Total prefill query tokens across all chunks. */
    i64 prefillTokens() const;

    /** Empty the plan keeping vector capacity: the engine reuses one
     *  plan across iterations, so composition is allocation-free once
     *  the high-water batch shape has been seen. */
    void
    clear()
    {
        prefills.clear();
        decodes.clear();
    }
};

/** FCFS waiting-queue and admission policy. */
class Scheduler
{
  public:
    struct Config
    {
        /** Max concurrently running requests (vLLM max_num_seqs). */
        int max_num_seqs = 256;
        /** Prefill token budget per iteration
         *  (vLLM max_num_batched_tokens; single prompts larger than
         *  the budget still run alone). */
        i64 max_batched_tokens = 32768;
        /** Iteration-composition policy (see SchedulingMode). */
        SchedulingMode mode = SchedulingMode::kPrefillPrioritized;
        /** kStallFreeChunked per-iteration token budget shared by
         *  decodes (one token each) and prefill chunks — the Sarathi
         *  chunk budget. 0 falls back to max_batched_tokens. */
        i64 chunk_tokens = 2048;

        /** The token budget one iteration may compose under. */
        i64 iterationTokenBudget() const;
    };

    explicit Scheduler(Config config);

    /** Add an arrived request to the back of the FCFS queue. */
    void enqueue(Request *request);

    /** Put a preempted request back at the front. */
    void requeueFront(Request *request);

    bool hasWaiting() const { return !waiting_.empty(); }
    std::size_t numWaiting() const { return waiting_.size(); }
    /** Oldest waiting request (nullptr when the queue is empty). */
    Request *frontWaiting() const;
    /** Remove the head of the queue (the composer admitted it). */
    void popFrontWaiting();
    /** Newest waiting request (nullptr when the queue is empty) —
     *  migration steals from the tail, preserving FCFS for the
     *  requests that have waited longest. */
    Request *backWaiting() const;
    /** Remove the tail of the queue (it migrated away). */
    void popBackWaiting();

    // ---- Swapped queue ----------------------------------------------
    //
    // Requests preempted to the host tier. They still hold a backend
    // slot and their computed state, so they are not re-admitted
    // through the waiting queue: the engine swaps them back in — FCFS,
    // before any new admission — as soon as device memory allows.

    /** Park a swapped-out request (FCFS order). */
    void pushSwapped(Request *request);
    bool hasSwapped() const { return !swapped_.empty(); }
    std::size_t numSwapped() const { return swapped_.size(); }
    /** Oldest swapped request (nullptr when none). */
    Request *frontSwapped() const;
    /** Remove the head of the swapped queue (swap-in succeeded). */
    void popFrontSwapped();
    /** Newest swapped request (nullptr when none). */
    Request *backSwapped() const;
    /** Remove the tail of the swapped queue (it migrated away). */
    void popBackSwapped();
    /** Drop everything queued (microbenchmark teardown); dropped
     *  requests are reset to kPending with no computed state so they
     *  can be re-enqueued later without stale slot/progress fields. */
    void clearWaiting();

    /** The FCFS waiting queue, oldest first (audits/introspection). */
    const RingDeque<Request *> &waitingQueue() const
    {
        return waiting_;
    }
    /** The swapped-out queue, oldest first (audits/introspection). */
    const RingDeque<Request *> &swappedQueue() const
    {
        return swapped_;
    }

    /**
     * Memory-admission gate. Non-const: the engine's implementation
     * refreshes the request's prefix-cache hint as a side effect, so
     * the budgets below see prefix-discounted demand.
     */
    using CanAdmit = std::function<bool(Request &)>;

    /**
     * Pick the prompts for the next prefill iteration: FCFS order,
     * gated by @p can_admit (memory) and the token/seq budgets.
     * Picked requests are removed from the queue and appended to
     * @p picked (cleared first; capacity is reused so the per
     * iteration hot path allocates nothing in steady state).
     */
    void pickPrefillBatch(int num_running, const CanAdmit &can_admit,
                          std::vector<Request *> &picked);

    /** Convenience overload returning a fresh vector. */
    std::vector<Request *>
    pickPrefillBatch(int num_running, const CanAdmit &can_admit);

    const Config &config() const { return config_; }

  private:
    Config config_;
    RingDeque<Request *> waiting_;
    RingDeque<Request *> swapped_;
};

/**
 * Composes the next IterationPlan from the waiting queue and the
 * running set. Owns no policy state beyond the config (only reusable
 * scratch storage): all queue mutation happens through the Scheduler
 * it is given, so the engine's view of the queue stays authoritative.
 */
class BatchComposer
{
  public:
    explicit BatchComposer(Scheduler::Config config);

    /**
     * Build the next iteration's plan into @p plan (cleared first;
     * its vectors keep their capacity, so steady-state composition is
     * allocation-free). @p running is the engine's running set in
     * admission order (possibly mid-prefill requests included);
     * @p can_admit gates new admissions on memory. Picked waiting
     * requests are popped from @p scheduler. An empty plan means
     * nothing can run (idle, or head-of-line blocked).
     */
    void
    composeInto(IterationPlan &plan, Scheduler &scheduler,
                const std::vector<Request *> &running,
                const Scheduler::CanAdmit &can_admit);

    /** Convenience overload returning a fresh plan (tests). */
    IterationPlan
    compose(Scheduler &scheduler, const std::vector<Request *> &running,
            const Scheduler::CanAdmit &can_admit);

    const Scheduler::Config &config() const { return config_; }

  private:
    void
    composePrefillPrioritized(
        IterationPlan &plan, Scheduler &scheduler,
        const std::vector<Request *> &running,
        const Scheduler::CanAdmit &can_admit);
    void
    composeStallFreeChunked(
        IterationPlan &plan, Scheduler &scheduler,
        const std::vector<Request *> &running,
        const Scheduler::CanAdmit &can_admit) const;

    Scheduler::Config config_;
    /** pickPrefillBatch output, reused across iterations. */
    std::vector<Request *> pick_scratch_;
};

} // namespace vattn::serving

#endif // VATTN_SERVING_SCHEDULER_HH
