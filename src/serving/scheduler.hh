/**
 * @file
 * FCFS continuous-batching scheduler (the vLLM v0.2.7 policy used as
 * the common harness in §7): prefills are prioritized whenever waiting
 * requests fit in memory, multiple prompts share a prefill iteration
 * up to a token budget, and decodes run the whole running set. On OOM
 * the most recently admitted request is preempted with recomputation.
 */

#ifndef VATTN_SERVING_SCHEDULER_HH
#define VATTN_SERVING_SCHEDULER_HH

#include <deque>
#include <functional>
#include <vector>

#include "serving/request.hh"

namespace vattn::serving
{

/** Waiting-queue and admission policy. */
class Scheduler
{
  public:
    struct Config
    {
        /** Max concurrently running requests (vLLM max_num_seqs). */
        int max_num_seqs = 256;
        /** Prefill token budget per iteration
         *  (vLLM max_num_batched_tokens; single prompts larger than
         *  the budget still run alone). */
        i64 max_batched_tokens = 32768;
    };

    explicit Scheduler(Config config);

    /** Add an arrived request to the back of the FCFS queue. */
    void enqueue(Request *request);

    /** Put a preempted request back at the front. */
    void requeueFront(Request *request);

    bool hasWaiting() const { return !waiting_.empty(); }
    std::size_t numWaiting() const { return waiting_.size(); }
    /** Drop everything queued (microbenchmark teardown). */
    void clearWaiting() { waiting_.clear(); }

    /**
     * Pick the prompts for the next prefill iteration: FCFS order,
     * gated by @p can_admit (memory) and the token/seq budgets.
     * Picked requests are removed from the queue.
     */
    std::vector<Request *>
    pickPrefillBatch(int num_running,
                     const std::function<bool(const Request &)> &can_admit);

    const Config &config() const { return config_; }

  private:
    Config config_;
    std::deque<Request *> waiting_;
};

} // namespace vattn::serving

#endif // VATTN_SERVING_SCHEDULER_HH
