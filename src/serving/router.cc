#include "serving/router.hh"

#include "common/logging.hh"

namespace vattn::serving
{

const char *
toString(RoutingPolicy policy)
{
    switch (policy) {
    case RoutingPolicy::kRoundRobin:
        return "round_robin";
    case RoutingPolicy::kJoinShortestQueue:
        return "join_shortest_queue";
    case RoutingPolicy::kLeastKvPressure:
        return "least_kv_pressure";
    }
    return "unknown";
}

Router::Router(RoutingPolicy policy, std::vector<Replica> replicas)
    : policy_(policy)
{
    fatal_if(replicas.empty(), "Router needs at least one replica");
    states_.reserve(replicas.size());
    for (const Replica &replica : replicas) {
        fatal_if(replica.kv_budget_bytes == 0,
                 "Router replica with zero KV budget");
        State state;
        state.info = replica;
        states_.push_back(std::move(state));
    }
}

void
Router::drainFinished(TimeNs now)
{
    for (State &state : states_) {
        while (!state.in_flight.empty() &&
               state.in_flight.top().est_finish_ns <= now) {
            state.kv_bytes -= state.in_flight.top().est_kv_bytes;
            state.in_flight.pop();
        }
    }
}

int
Router::pick() const
{
    // Ties break toward the lowest replica index so decisions are a
    // pure function of the arrival history.
    int best = 0;
    switch (policy_) {
    case RoutingPolicy::kRoundRobin:
        best = next_round_robin_;
        break;
    case RoutingPolicy::kJoinShortestQueue:
        for (int i = 1; i < numReplicas(); ++i) {
            if (outstanding(i) < outstanding(best)) {
                best = i;
            }
        }
        break;
    case RoutingPolicy::kLeastKvPressure:
        for (int i = 1; i < numReplicas(); ++i) {
            if (kvPressure(i) < kvPressure(best)) {
                best = i;
            }
        }
        break;
    }
    return best;
}

int
Router::route(TimeNs arrival_ns,
              const std::function<Estimate(int)> &estimate)
{
    panic_if(!estimate, "route: null estimator");
    panic_if(arrival_ns < last_arrival_ns_,
             "route: arrivals must be time-ordered");
    last_arrival_ns_ = arrival_ns;
    drainFinished(arrival_ns);

    const int chosen = pick();
    next_round_robin_ = (chosen + 1) % numReplicas();

    const Estimate footprint = estimate(chosen);
    State &state = states_[static_cast<std::size_t>(chosen)];
    state.in_flight.push(InFlight{arrival_ns + footprint.service_ns,
                                  footprint.kv_bytes});
    state.kv_bytes += footprint.kv_bytes;
    return chosen;
}

double
Router::liveScore(const LiveLoad &load)
{
    // Queued requests dominate: each one must wait out a whole prefill
    // ahead of the arrival. Prefill debt is normalized to typical-
    // prompt units (4Ki tokens) so token counts don't drown out queue
    // depth; KV pressure and comm share are [0, 1]-ish nudges that
    // separate otherwise-equal replicas.
    return 3.0 * static_cast<double>(load.queued) +
           static_cast<double>(load.running) +
           static_cast<double>(load.prefill_debt_tokens) / 4096.0 +
           4.0 * load.kv_pressure + 2.0 * load.comm_share;
}

int
Router::routeLive(TimeNs arrival_ns,
                  const std::function<LiveLoad(int)> &load)
{
    panic_if(!load, "routeLive: null load sampler");
    panic_if(arrival_ns < last_arrival_ns_,
             "routeLive: arrivals must be time-ordered");
    last_arrival_ns_ = arrival_ns;

    int best = 0;
    LiveLoad best_load = load(0);
    double best_score = liveScore(best_load);
    for (int i = 1; i < numReplicas(); ++i) {
        const LiveLoad candidate = load(i);
        const double score = liveScore(candidate);
        // Lexicographic: saturation flag, then score, then index.
        const bool wins =
            (best_load.kv_saturated && !candidate.kv_saturated) ||
            (best_load.kv_saturated == candidate.kv_saturated &&
             score < best_score);
        if (wins) {
            best = i;
            best_load = candidate;
            best_score = score;
        }
    }
    return best;
}

i64
Router::outstanding(int replica) const
{
    return static_cast<i64>(
        states_[static_cast<std::size_t>(replica)].in_flight.size());
}

u64
Router::kvBytes(int replica) const
{
    return states_[static_cast<std::size_t>(replica)].kv_bytes;
}

double
Router::kvPressure(int replica) const
{
    const State &state = states_[static_cast<std::size_t>(replica)];
    return static_cast<double>(state.kv_bytes) /
           static_cast<double>(state.info.kv_budget_bytes);
}

} // namespace vattn::serving
