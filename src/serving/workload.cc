#include "serving/workload.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace vattn::serving
{

namespace
{

i64
clampTokens(double x, i64 lo, i64 hi)
{
    const i64 v = static_cast<i64>(std::llround(x));
    return std::min(hi, std::max(lo, v));
}

} // namespace

TraceStats
computeStats(const std::vector<Request> &trace)
{
    TraceStats stats;
    stats.num_requests = static_cast<i64>(trace.size());
    if (trace.empty()) {
        return stats;
    }
    stats.min_prompt = trace[0].prompt_tokens;
    stats.max_prompt = trace[0].prompt_tokens;
    stats.min_decode = trace[0].max_new_tokens;
    stats.max_decode = trace[0].max_new_tokens;
    double prompt_sum = 0;
    double decode_sum = 0;
    double ratio_sum = 0;
    for (const Request &r : trace) {
        stats.min_prompt = std::min(stats.min_prompt, r.prompt_tokens);
        stats.max_prompt = std::max(stats.max_prompt, r.prompt_tokens);
        stats.min_decode = std::min(stats.min_decode, r.max_new_tokens);
        stats.max_decode = std::max(stats.max_decode, r.max_new_tokens);
        prompt_sum += static_cast<double>(r.prompt_tokens);
        decode_sum += static_cast<double>(r.max_new_tokens);
        ratio_sum += static_cast<double>(r.prompt_tokens) /
                     static_cast<double>(r.max_new_tokens);
    }
    const double n = static_cast<double>(trace.size());
    stats.mean_prompt = prompt_sum / n;
    stats.mean_decode = decode_sum / n;
    stats.mean_pd_ratio = ratio_sum / n;

    // Burstiness of the arrival process (0 unless arrivals assigned):
    // CV of the sorted inter-arrival gaps. Poisson gives ~1; bursty
    // multi-tenant traces run well above it.
    std::vector<TimeNs> arrivals;
    arrivals.reserve(trace.size());
    for (const Request &r : trace) {
        arrivals.push_back(r.arrival_ns);
    }
    std::sort(arrivals.begin(), arrivals.end());
    if (arrivals.size() >= 2 && arrivals.back() > 0) {
        double mean = 0;
        double m2 = 0;
        double count = 0;
        for (std::size_t i = 1; i < arrivals.size(); ++i) {
            const double gap =
                static_cast<double>(arrivals[i] - arrivals[i - 1]);
            count += 1;
            const double delta = gap - mean;
            mean += delta / count;
            m2 += delta * (gap - mean);
        }
        if (mean > 0) {
            stats.arrival_cv = std::sqrt(m2 / count) / mean;
        }
    }
    return stats;
}

std::vector<Request>
arxivOfflineTrace(int n, u64 seed)
{
    Rng rng(seed * 0x9e37'79b9'7f4a'7c15ULL + 0xabcdULL);
    std::vector<Request> trace;
    trace.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        Request r;
        r.id = static_cast<u64>(i);
        // Total context 64K..192K; decode lengths heavy-tailed
        // (17..5153, abstract-sized mostly).
        // Skewed toward the 64K end (arXiv papers mostly fit in
        // ~64-100K tokens); clipped to the paper's 64K-192K range.
        const i64 total = clampTokens(
            rng.logNormal(std::log(82e3), 0.32), 64 * 1024, 192 * 1024);
        r.max_new_tokens =
            clampTokens(rng.logNormal(std::log(385.0), 0.9), 17, 5153);
        r.prompt_tokens = total - r.max_new_tokens;
        trace.push_back(r);
    }
    return trace;
}

std::vector<Request>
arxivOnlineTrace(int n, u64 seed)
{
    Rng rng(seed * 0x9e37'79b9'7f4a'7c15ULL + 0x1234ULL);
    std::vector<Request> trace;
    trace.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        Request r;
        r.id = static_cast<u64>(i);
        r.prompt_tokens = clampTokens(
            rng.logNormal(std::log(28.5e3), 0.18), 22 * 1024, 45 * 1024);
        r.max_new_tokens =
            clampTokens(rng.logNormal(std::log(300.0), 0.85), 6, 3250);
        trace.push_back(r);
    }
    return trace;
}

std::vector<Request>
openChatTrace(int n, u64 seed)
{
    Rng rng(seed * 0x9e37'79b9'7f4a'7c15ULL + 0x5678ULL);
    std::vector<Request> trace;
    trace.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        Request r;
        r.id = static_cast<u64>(i);
        // Chat prompts: mostly short with occasional pasted context;
        // decodes are long-form answers. Mean total context ~3.8K
        // tokens, which reproduces the memory-bound batch sizes of
        // Figure 15 at 7 QPS.
        r.prompt_tokens = clampTokens(
            rng.logNormal(std::log(2900.0), 0.2), 64, 16 * 1024);
        r.max_new_tokens = clampTokens(
            rng.logNormal(std::log(700.0), 0.3), 32, 4096);
        trace.push_back(r);
    }
    return trace;
}

std::vector<Request>
longContextTrace(int n, i64 min_prompt, i64 max_prompt, u64 seed)
{
    panic_if(min_prompt <= 0 || max_prompt < min_prompt,
             "longContextTrace needs 0 < min_prompt <= max_prompt");
    Rng rng(seed * 0x9e37'79b9'7f4a'7c15ULL + 0x77aaULL);
    std::vector<Request> trace;
    trace.reserve(static_cast<std::size_t>(n));
    // Center the log-normal on the geometric mean of the range so both
    // ends are exercised; sigma 0.45 puts ~90% of mass inside it.
    const double mu = 0.5 * (std::log(static_cast<double>(min_prompt)) +
                             std::log(static_cast<double>(max_prompt)));
    for (int i = 0; i < n; ++i) {
        Request r;
        r.id = static_cast<u64>(i);
        r.prompt_tokens = clampTokens(rng.logNormal(mu, 0.45),
                                      min_prompt, max_prompt);
        r.max_new_tokens = clampTokens(
            rng.logNormal(std::log(400.0), 0.5), 32, 2048);
        trace.push_back(r);
    }
    return trace;
}

std::vector<Request>
shareGptTrace(int n, u64 seed)
{
    Rng rng(seed * 0x9e37'79b9'7f4a'7c15ULL + 0x9a9aULL);
    std::vector<Request> trace;
    trace.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        Request r;
        r.id = static_cast<u64>(i);
        // ShareGPT conversations: median prompt ~160 tokens with a
        // heavy paste tail, decodes are chat answers that frequently
        // outrun the prompt (mean ~340 tokens).
        r.prompt_tokens = clampTokens(
            rng.logNormal(std::log(165.0), 0.95), 8, 8 * 1024);
        r.max_new_tokens = clampTokens(
            rng.logNormal(std::log(290.0), 0.75), 16, 2048);
        trace.push_back(r);
    }
    return trace;
}

std::vector<Request>
sharedSystemPromptTrace(int n, int tenants, i64 system_tokens,
                        i64 user_mean, u64 seed)
{
    fatal_if(tenants <= 0, "need at least one tenant");
    fatal_if(system_tokens <= 0, "system prompt must be non-empty");
    constexpr i32 kVocab = 32000;
    Rng rng(seed * 0x9e37'79b9'7f4a'7c15ULL + 0x51c7ULL);

    // Fixed per-tenant system prompts (identical across requests).
    std::vector<std::vector<i32>> system_prompts(
        static_cast<std::size_t>(tenants));
    for (auto &prompt : system_prompts) {
        prompt.reserve(static_cast<std::size_t>(system_tokens));
        for (i64 t = 0; t < system_tokens; ++t) {
            prompt.push_back(
                static_cast<i32>(rng.uniformInt(0, kVocab - 1)));
        }
    }

    std::vector<Request> trace;
    trace.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        Request r;
        r.id = static_cast<u64>(i);
        const auto tenant = static_cast<std::size_t>(
            rng.uniformInt(0, tenants - 1));
        const i64 user_tokens = clampTokens(
            rng.logNormal(std::log(static_cast<double>(user_mean)),
                          0.4),
            16, 4 * user_mean);
        r.token_ids = system_prompts[tenant];
        r.token_ids.reserve(r.token_ids.size() +
                            static_cast<std::size_t>(user_tokens));
        for (i64 t = 0; t < user_tokens; ++t) {
            r.token_ids.push_back(
                static_cast<i32>(rng.uniformInt(0, kVocab - 1)));
        }
        r.prompt_tokens = static_cast<i64>(r.token_ids.size());
        r.max_new_tokens = clampTokens(
            rng.logNormal(std::log(160.0), 0.5), 16, 1024);
        trace.push_back(std::move(r));
    }
    return trace;
}

std::vector<Request>
skewedTenantOnlineTrace(int n, double hot_fraction, double mean_qps,
                        double period_s, u64 seed)
{
    fatal_if(n <= 0, "need at least one request");
    fatal_if(hot_fraction < 0 || hot_fraction >= 1,
             "hot_fraction must be in [0, 1)");
    fatal_if(mean_qps <= 0, "mean_qps must be positive");
    Rng rng(seed * 0x9e37'79b9'7f4a'7c15ULL + 0x7e47ULL);
    const int n_hot =
        static_cast<int>(std::llround(hot_fraction * n));
    const int n_background = n - n_hot;

    // Background tenants: conversational load breathing with the
    // diurnal cycle (peaks and troughs, but no clumping beyond it).
    std::vector<Request> trace = shareGptTrace(n_background, seed + 1);
    assignDiurnalArrivals(trace, mean_qps, period_s, 0.9, seed + 2);
    double horizon_s = 1.0;
    for (const Request &r : trace) {
        horizon_s = std::max(
            horizon_s, static_cast<double>(r.arrival_ns) / 1e9);
    }

    // The hot tenant: same request shapes, pathological arrivals —
    // clumps of 4-32 requests at ~40x the mean rate, dropped at
    // uniformly random points of the day (bursts land in the diurnal
    // troughs too, where a static router has stale load estimates).
    std::vector<Request> hot = shareGptTrace(n_hot, seed + 3);
    const double burst_qps = 40.0 * mean_qps;
    std::size_t next = 0;
    while (next < hot.size()) {
        const i64 burst = clampTokens(
            rng.logNormal(std::log(10.0), 0.5), 4, 32);
        double t_s = rng.uniform() * horizon_s;
        for (i64 k = 0; k < burst && next < hot.size(); ++k, ++next) {
            t_s += rng.exponential(burst_qps);
            hot[next].arrival_ns = static_cast<TimeNs>(t_s * 1e9);
            hot[next].state = Request::State::kPending;
        }
    }
    trace.insert(trace.end(), hot.begin(), hot.end());

    // The online path submits in arrival order: sort (stable, so
    // same-instant requests keep background-before-hot order) and
    // re-id positionally.
    std::stable_sort(trace.begin(), trace.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrival_ns < b.arrival_ns;
                     });
    for (std::size_t i = 0; i < trace.size(); ++i) {
        trace[i].id = static_cast<u64>(i);
    }
    return trace;
}

void
assignPoissonArrivals(std::vector<Request> &trace, double qps, u64 seed)
{
    fatal_if(qps <= 0, "qps must be positive");
    Rng rng(seed * 0x517c'c1b7'2722'0a95ULL + 0x42ULL);
    double t_s = 0;
    for (Request &r : trace) {
        t_s += rng.exponential(qps);
        r.arrival_ns = static_cast<TimeNs>(t_s * 1e9);
        r.state = Request::State::kPending;
    }
}

void
assignOfflineArrivals(std::vector<Request> &trace)
{
    for (Request &r : trace) {
        r.arrival_ns = 0;
        r.state = Request::State::kPending;
    }
}

void
assignDiurnalArrivals(std::vector<Request> &trace, double mean_qps,
                      double period_s, double depth, u64 seed)
{
    fatal_if(mean_qps <= 0, "mean_qps must be positive");
    fatal_if(period_s <= 0, "period_s must be positive");
    fatal_if(depth < 0 || depth >= 1, "depth must be in [0, 1)");
    Rng rng(seed * 0x9e37'79b9'7f4a'7c15ULL + 0x5aULL);
    // Thinning: draw candidates from a homogeneous process at the
    // peak rate, keep each with probability rate(t) / peak.
    const double peak_qps = mean_qps * (1.0 + depth);
    const double two_pi = 8.0 * std::atan(1.0);
    double t_s = 0;
    for (Request &r : trace) {
        while (true) {
            t_s += rng.exponential(peak_qps);
            const double rate =
                mean_qps *
                (1.0 + depth * std::sin(two_pi * t_s / period_s));
            if (rng.uniform() * peak_qps <= rate) {
                break;
            }
        }
        r.arrival_ns = static_cast<TimeNs>(t_s * 1e9);
        r.state = Request::State::kPending;
    }
}

} // namespace vattn::serving
