/**
 * @file
 * Thread-safe submission queue: the handoff between request producers
 * (API frontends, trace replayers, load generators) and the serving
 * loop that pumps ServingCluster::submit. Producers push from any
 * thread; the consumer drains in FIFO order — which, when producers
 * push in arrival-time order, is exactly the monotone submission
 * order the online path requires. close() lets producers signal the
 * end of the stream so the consumer can drain and shut down.
 */

#ifndef VATTN_SERVING_REQUEST_QUEUE_HH
#define VATTN_SERVING_REQUEST_QUEUE_HH

#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "serving/request.hh"

namespace vattn::serving
{

/** Unbounded MPSC-style queue of pending submissions. */
class RequestQueue
{
  public:
    /** Enqueue one request. Panics after close() — a producer racing
     *  past the end-of-stream marker is a bug, not load. */
    void
    push(Request request)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            panic_if(closed_, "RequestQueue::push after close");
            // alloc-ok: one node per submission, producer side
            pending_.push_back(std::move(request));
        }
        ready_.notify_one();
    }

    /** Dequeue the oldest request into @p out without blocking.
     *  Returns false when the queue is momentarily empty. */
    bool
    tryPop(Request &out)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (pending_.empty()) {
            return false;
        }
        out = std::move(pending_.front());
        pending_.pop_front();
        return true;
    }

    /** Dequeue the oldest request, blocking until one is available or
     *  the queue is closed and drained (then returns false). */
    bool
    pop(Request &out)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock,
                    [this] { return closed_ || !pending_.empty(); });
        if (pending_.empty()) {
            return false; // closed and drained
        }
        out = std::move(pending_.front());
        pending_.pop_front();
        return true;
    }

    /** Move every pending request into @p out (appending), FIFO. */
    void
    drainInto(std::vector<Request> &out)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (Request &request : pending_) {
            out.push_back(std::move(request));
        }
        pending_.clear();
    }

    /** Mark the end of the stream; wakes blocked consumers. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        ready_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return pending_.size();
    }

  private:
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<Request> pending_;
    bool closed_ = false;
};

} // namespace vattn::serving

#endif // VATTN_SERVING_REQUEST_QUEUE_HH
