#include "serving/serving_audit.hh"

#include <unordered_map>
#include <unordered_set>

namespace vattn::serving
{

const char *
toString(Request::State state)
{
    switch (state) {
    case Request::State::kPending:
        return "Pending";
    case Request::State::kWaiting:
        return "Waiting";
    case Request::State::kRunning:
        return "Running";
    case Request::State::kSwapped:
        return "Swapped";
    case Request::State::kFinished:
        return "Finished";
    case Request::State::kDropped:
        return "Dropped";
    case Request::State::kShed:
        return "Shed";
    case Request::State::kMigrated:
        return "Migrated";
    }
    return "<invalid>";
}

bool
isLegalTransition(Request::State from, Request::State to)
{
    using State = Request::State;
    switch (from) {
    case State::kPending:
        return to == State::kWaiting;
    case State::kWaiting:
        return to == State::kRunning || to == State::kDropped ||
               to == State::kPending || to == State::kShed ||
               to == State::kMigrated;
    case State::kRunning:
        return to == State::kWaiting || to == State::kSwapped ||
               to == State::kFinished || to == State::kDropped;
    case State::kSwapped:
        return to == State::kRunning || to == State::kMigrated;
    case State::kFinished:
    case State::kDropped:
    case State::kShed:
        return false; // terminal
    case State::kMigrated:
        // Terminal on the donor; the adopting replica resumes its own
        // copy from kWaiting/kSwapped, which the donor's tombstone
        // never re-enters.
        return false;
    }
    return false;
}

bool
isReachableState(Request::State from, Request::State to)
{
    if (from == to) {
        return true;
    }
    // Eight states: a fixed-point sweep over the transition relation
    // terminates in at most seven rounds.
    constexpr int kNumStates = 8;
    bool reachable[kNumStates] = {};
    reachable[static_cast<int>(from)] = true;
    for (int round = 0; round < kNumStates - 1; ++round) {
        for (int s = 0; s < kNumStates; ++s) {
            if (!reachable[s]) {
                continue;
            }
            for (int t = 0; t < kNumStates; ++t) {
                if (isLegalTransition(static_cast<Request::State>(s),
                                      static_cast<Request::State>(t))) {
                    reachable[t] = true;
                }
            }
        }
    }
    return reachable[static_cast<int>(to)];
}

namespace
{

/** Check one container's members against the state and slot shape its
 *  membership implies, recording each request's owner for the
 *  cross-container disjointness check. */
void
auditContainer(const char *container, const Request *const *requests,
               std::size_t count, Request::State expected,
               bool holds_slot,
               std::unordered_map<const Request *, const char *> &seen,
               audit::AuditReport &report)
{
    for (std::size_t i = 0; i < count; ++i) {
        const Request *request = requests[i];
        if (request == nullptr) {
            report.fail("serving: ", container,
                        " holds a null request");
            continue;
        }
        const auto [it, inserted] = seen.emplace(request, container);
        if (!inserted) {
            report.fail("serving: request ", request->id, " is in ",
                        it->second, " and ", container,
                        " at once (containers must be disjoint)");
        }
        if (request->state != expected) {
            report.fail("serving: request ", request->id, " is in ",
                        container, " but its state is ",
                        toString(request->state), ", expected ",
                        toString(expected));
        }
        if (holds_slot && request->slot < 0) {
            report.fail("serving: request ", request->id, " is in ",
                        container, " without a backend slot");
        }
        if (!holds_slot && request->slot >= 0) {
            report.fail("serving: request ", request->id, " is in ",
                        container, " but still holds slot ",
                        request->slot);
        }
    }
}

} // namespace

void
auditServingState(const std::vector<Request *> &running,
                  const Scheduler &scheduler,
                  audit::AuditReport &report)
{
    std::unordered_map<const Request *, const char *> seen;
    auditContainer("running", running.data(), running.size(),
                   Request::State::kRunning, /*holds_slot=*/true, seen,
                   report);
    const auto &waiting = scheduler.waitingQueue();
    const std::vector<Request *> waiting_flat(waiting.begin(),
                                              waiting.end());
    auditContainer("waiting", waiting_flat.data(), waiting_flat.size(),
                   Request::State::kWaiting, /*holds_slot=*/false, seen,
                   report);
    const auto &swapped = scheduler.swappedQueue();
    const std::vector<Request *> swapped_flat(swapped.begin(),
                                              swapped.end());
    auditContainer("swapped", swapped_flat.data(), swapped_flat.size(),
                   Request::State::kSwapped, /*holds_slot=*/true, seen,
                   report);
    // No two slot-holding requests may share a backend slot.
    std::unordered_map<int, const Request *> slot_owner;
    for (const auto &[request, container] : seen) {
        (void)container;
        if (request == nullptr || request->slot < 0) {
            continue;
        }
        const auto [it, inserted] =
            slot_owner.emplace(request->slot, request);
        if (!inserted) {
            report.fail("serving: requests ", it->second->id, " and ",
                        request->id, " both hold slot ",
                        request->slot);
        }
    }
}

} // namespace vattn::serving
