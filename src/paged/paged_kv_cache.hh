/**
 * @file
 * Functional paged KV cache: per-layer K/V pool tensors of shape
 * [num_blocks, block_size, H, D], committed up-front via cudaMalloc
 * (exactly how vLLM pre-reserves its whole KV region at startup) and
 * addressed through Block-Tables. Used by the functional correctness
 * tests and the paged-vs-contiguous equivalence properties.
 */

#ifndef VATTN_PAGED_PAGED_KV_CACHE_HH
#define VATTN_PAGED_PAGED_KV_CACHE_HH

#include <vector>

#include "attn/kv_view.hh"
#include "cuvmm/driver.hh"
#include "paged/block_manager.hh"
#include "tensor/virtual_tensor.hh"

namespace vattn::paged
{

/** Owns the pool tensors for every layer plus the block manager. */
class PagedKvCache
{
  public:
    struct Config
    {
        int num_layers;
        int num_kv_heads;
        int head_dim;
        i64 block_size = 16;
        i64 num_blocks;
        tensor::DType dtype = tensor::DType::kF16;
    };

    PagedKvCache(cuvmm::Driver &driver, const Config &config);
    ~PagedKvCache();

    PagedKvCache(const PagedKvCache &) = delete;
    PagedKvCache &operator=(const PagedKvCache &) = delete;

    BlockManager &blockManager() { return manager_; }
    const Config &config() const { return config_; }

    /** Pool tensors of one layer. */
    tensor::VirtualTensor &kPool(int layer);
    tensor::VirtualTensor &vPool(int layer);

    /** Paged view for a request's blocks at one layer. */
    attn::PagedKvView view(const std::vector<i32> &blocks, int layer,
                           bool touch_tlb = false);

    /**
     * Copy-on-write: make the block holding @p token private to
     * @p blocks. If the block is shared (refcount > 1), a fresh block
     * is allocated, the K/V data of every layer is copied, and the
     * request's table entry is swapped. Returns the (possibly new)
     * block id. Call before appending KV into a shared prefix region.
     */
    Result<i32> ensurePrivate(RequestBlocks &blocks, i64 token);

    /** Copy one block's K and V data across all layers. */
    void copyBlockData(i32 dst, i32 src);

    /** Total pool bytes committed at startup. */
    u64 committedBytes() const;

  private:
    cuvmm::Driver &driver_;
    Config config_;
    BlockManager manager_;
    std::vector<Addr> k_base_; ///< one cudaMalloc region per layer
    std::vector<Addr> v_base_;
    std::vector<tensor::VirtualTensor> k_pool_;
    std::vector<tensor::VirtualTensor> v_pool_;
};

} // namespace vattn::paged

#endif // VATTN_PAGED_PAGED_KV_CACHE_HH
