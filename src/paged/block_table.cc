#include "paged/block_table.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vattn::paged
{

PaddedBlockTable
PaddedBlockTable::build(
    const std::vector<const std::vector<i32> *> &request_blocks)
{
    PaddedBlockTable table;
    table.batch = static_cast<i64>(request_blocks.size());
    for (const auto *blocks : request_blocks) {
        table.max_blocks = std::max(
            table.max_blocks, static_cast<i64>(blocks->size()));
    }
    table.entries.assign(
        static_cast<std::size_t>(table.batch * table.max_blocks), -1);
    for (i64 r = 0; r < table.batch; ++r) {
        const auto &blocks = *request_blocks[static_cast<std::size_t>(r)];
        for (std::size_t b = 0; b < blocks.size(); ++b) {
            table.entries[static_cast<std::size_t>(r * table.max_blocks) +
                          b] = blocks[b];
        }
    }
    return table;
}

i32
PaddedBlockTable::at(i64 request, i64 slot) const
{
    panic_if(request < 0 || request >= batch, "request out of range");
    panic_if(slot < 0 || slot >= max_blocks, "slot out of range");
    return entries[static_cast<std::size_t>(request * max_blocks + slot)];
}

CompressedBlockTable
CompressedBlockTable::build(
    const std::vector<const std::vector<i32> *> &request_blocks)
{
    CompressedBlockTable table;
    table.indptr.reserve(request_blocks.size() + 1);
    table.indptr.push_back(0);
    for (const auto *blocks : request_blocks) {
        table.indices.insert(table.indices.end(), blocks->begin(),
                             blocks->end());
        table.indptr.push_back(static_cast<i32>(table.indices.size()));
    }
    return table;
}

std::pair<const i32 *, const i32 *>
CompressedBlockTable::row(i64 request) const
{
    panic_if(request < 0 || request >= batch(), "request out of range");
    const auto begin = static_cast<std::size_t>(
        indptr[static_cast<std::size_t>(request)]);
    const auto end = static_cast<std::size_t>(
        indptr[static_cast<std::size_t>(request) + 1]);
    return {indices.data() + begin, indices.data() + end};
}

} // namespace vattn::paged
