/**
 * @file
 * vLLM-style block manager: the user-space memory manager that the
 * PagedAttention approach forces a serving framework to implement (§3.2).
 * The KV cache is carved into fixed-size blocks of block_size tokens;
 * a logical block id indexes the per-layer K and V pools simultaneously,
 * so one block accounts for 2 * N * H * D * P * block_size bytes.
 */

#ifndef VATTN_PAGED_BLOCK_MANAGER_HH
#define VATTN_PAGED_BLOCK_MANAGER_HH

#include <list>
#include <unordered_map>
#include <vector>

#include "common/audit.hh"
#include "common/status.hh"
#include "common/types.hh"

namespace vattn::paged
{

/**
 * Free-list allocator of KV-cache blocks with refcounts, plus an
 * optional hash-block prefix cache (the vLLM prefix-caching scheme):
 * full blocks are tagged with the chained content hash of the tokens
 * they hold, and a block whose refcount drops to zero is parked on an
 * LRU "evictable" list instead of the free list, so a later request
 * with the same prompt prefix can revive it with refSharedBlock().
 * Eviction pops the least recently parked block when the free list
 * runs dry. With caching disabled (the default) behaviour is
 * bit-for-bit the historical free-list allocator.
 */
class BlockManager
{
  public:
    /**
     * @param num_blocks pool capacity in blocks
     * @param block_size tokens per block
     * @param enable_prefix_cache park refcount-0 hashed blocks on the
     *        LRU evictable list instead of freeing them
     * @param num_cpu_blocks CPU (host) block pool for block-granular
     *        swap, the vLLM --swap-space model (0 disables swapping)
     */
    BlockManager(i64 num_blocks, i64 block_size,
                 bool enable_prefix_cache = false,
                 i64 num_cpu_blocks = 0);

    i64 numBlocks() const { return num_blocks_; }
    i64 blockSize() const { return block_size_; }
    bool prefixCacheEnabled() const { return prefix_cache_; }
    i64 numFree() const { return static_cast<i64>(free_list_.size()); }
    i64 numAllocated() const { return num_blocks_ - numFree(); }
    /** Refcount-0 blocks parked for prefix reuse (allocatable). */
    i64 numEvictable() const
    {
        return static_cast<i64>(evictable_.size());
    }
    /** Free + evictable: blocks obtainable without touching live ones. */
    i64 numAllocatable() const { return numFree() + numEvictable(); }
    /** Blocks referenced by live requests. */
    i64 numLive() const { return numAllocated() - numEvictable(); }

    /** Blocks needed to store @p tokens tokens. */
    i64 blocksFor(i64 tokens) const;

    /** Allocate one block (refcount = 1); evicts the LRU cached block
     *  (dropping its hash) when the free list is empty. */
    Result<i32> allocBlock();

    /** Increase the refcount (prefix sharing / copy-on-write support). */
    Status addRef(i32 block);

    /** Drop a reference; at zero the block goes to the free list, or
     *  to the evictable LRU when it carries a prefix hash. */
    Status freeBlock(i32 block);

    int refCount(i32 block) const;

    // ---- Prefix cache (no-ops unless enabled) -----------------------

    /** Tag @p block with the chained content hash of the tokens it
     *  holds; the hash map always points at the latest such block. */
    void setBlockHash(i32 block, u64 hash);

    /** Block currently holding @p hash (live or evictable), or -1. */
    i32 lookupHash(u64 hash) const;

    /** Take a reference on a block found via lookupHash: bumps a live
     *  block's refcount, or revives an evictable one (refcount 1). */
    Status refSharedBlock(i32 block);

    // ---- CPU block pool: block-granular swap ------------------------
    //
    // The vLLM preempt-by-swap model: a victim's GPU blocks move to
    // same-sized CPU blocks and back. Sharing never survives a swap —
    // a block another request still references must stay resident, so
    // swapOutBlock refuses refcount > 1.

    i64 numCpuBlocks() const { return num_cpu_blocks_; }
    i64 numCpuFree() const
    {
        return static_cast<i64>(cpu_free_list_.size());
    }
    i64 numCpuInUse() const { return num_cpu_blocks_ - numCpuFree(); }

    /**
     * Move one device block to a CPU block: drops the device block's
     * hash (its content leaves the device) and frees it for reuse.
     * kFailedPrecondition when the block is shared (refcount != 1),
     * kOutOfMemory when the CPU pool is full.
     */
    Result<i32> swapOutBlock(i32 block);

    /** Bring a CPU block back: allocates a device block (evicting the
     *  LRU cached block if needed) and frees the CPU block. */
    Result<i32> swapInBlock(i32 cpu_block);

    /** Return a CPU block without swapping it in (request dropped). */
    Status freeCpuBlock(i32 cpu_block);

    /** Take a CPU block straight from the free pool without a device
     *  copy (migration import: the payload is already in host memory,
     *  handed over from the donor replica). kOutOfMemory when full. */
    Result<i32> acquireCpuBlock();

    /**
     * Self-audit: the free list, evictable LRU and live (refcount > 0)
     * blocks partition the pool; evictable blocks keep a valid hash
     * entry; the CPU pool conserves blocks. Records violations in
     * @p report.
     */
    void auditInto(audit::AuditReport &report) const;

    /** Conservation check for tests. Wraps auditInto. */
    bool checkInvariants() const;

    /** Sum of refcounts over all blocks (cross-layer audits compare
     *  it against the holds the serving layer can account for). */
    i64 totalRefCount() const;

  private:
    void dropHash(i32 block);

    i64 num_blocks_;
    i64 block_size_;
    bool prefix_cache_;
    i64 num_cpu_blocks_;
    std::vector<i32> cpu_free_list_;
    std::vector<bool> cpu_in_use_;
    std::vector<i32> free_list_;
    std::vector<int> ref_counts_;
    /** Content hash per block (valid iff has_hash_[block]). */
    std::vector<u64> block_hash_;
    std::vector<bool> has_hash_;
    std::unordered_map<u64, i32> hash_to_block_;
    /** Refcount-0 cached blocks, least recently parked first. */
    std::list<i32> evictable_;
    /** Iterator into evictable_ per block (valid when parked). */
    std::vector<std::list<i32>::iterator> evictable_pos_;
    std::vector<bool> is_evictable_;
};

/**
 * The per-request logical-to-physical block list a PagedAttention
 * serving framework maintains, mirroring what the OS page table already
 * does (Figure 1 of the paper).
 */
class RequestBlocks
{
  public:
    /** Sentinel in blocks() for a dead leading slot of a
     *  sliding-window layer group (freed or never allocated). */
    static constexpr i32 kNoBlock = -1;

    explicit RequestBlocks(BlockManager *manager);
    ~RequestBlocks();

    RequestBlocks(const RequestBlocks &) = delete;
    RequestBlocks &operator=(const RequestBlocks &) = delete;
    RequestBlocks(RequestBlocks &&other) noexcept;
    RequestBlocks &operator=(RequestBlocks &&other) noexcept;

    /** Grow the block list to cover @p tokens tokens. */
    Status ensureTokens(i64 tokens);

    /**
     * Advance the dead-lead boundary of a sliding-window layer group:
     * blocks below @p lead_blocks are freed back to the manager (a
     * hash-cached block parks on the evictable LRU instead of being
     * destroyed) and their entries become kNoBlock, keeping indexing
     * absolute. On an empty list the dead region is skipped without
     * ever allocating it. The lead never rewinds.
     */
    void advanceLeadTo(i64 lead_blocks);

    /** First live block index (0 unless a window advanced it). */
    i64 lead() const { return lead_; }

    /** Blocks actually held (list size minus the dead lead). */
    i64 liveBlockCount() const
    {
        return static_cast<i64>(blocks_.size()) - lead_;
    }

    /**
     * Share the parent's blocks covering the first @p prefix_tokens
     * tokens (prefix de-duplication, as in vLLM's prefix caching):
     * full blocks are reference-counted rather than copied. This list
     * must be empty. Writes into shared blocks must go through
     * PagedKvCache::ensurePrivate (copy-on-write).
     */
    Status shareFrom(const RequestBlocks &parent, i64 prefix_tokens);

    /**
     * Swap the block at @p index for @p new_block (whose reference
     * the caller transfers in), dropping this list's reference on the
     * old block. Used by the copy-on-write path.
     */
    Status replaceBlock(std::size_t index, i32 new_block);

    /** Append a block whose reference the caller already took
     *  (hash-based prefix sharing via refSharedBlock). */
    void adoptBlock(i32 block);

    /**
     * Relinquish the block list without touching refcounts: the caller
     * has already moved every block's ownership elsewhere (swap-out
     * transfers them to CPU blocks one by one). Returns the list
     * (kNoBlock entries below lead() included) and resets the lead.
     */
    std::vector<i32> releaseForSwap();

    /** Release all blocks back to the manager (lead resets to 0). */
    void releaseAll();

    i64 numTokensCapacity() const;
    /** Logical-to-physical table; entries below lead() are kNoBlock. */
    const std::vector<i32> &blocks() const { return blocks_; }

  private:
    BlockManager *manager_;
    std::vector<i32> blocks_;
    i64 lead_ = 0; ///< blocks below this index are dead (kNoBlock)
};

} // namespace vattn::paged

#endif // VATTN_PAGED_BLOCK_MANAGER_HH
