/**
 * @file
 * vLLM-style block manager: the user-space memory manager that the
 * PagedAttention approach forces a serving framework to implement (§3.2).
 * The KV cache is carved into fixed-size blocks of block_size tokens;
 * a logical block id indexes the per-layer K and V pools simultaneously,
 * so one block accounts for 2 * N * H * D * P * block_size bytes.
 */

#ifndef VATTN_PAGED_BLOCK_MANAGER_HH
#define VATTN_PAGED_BLOCK_MANAGER_HH

#include <vector>

#include "common/status.hh"
#include "common/types.hh"

namespace vattn::paged
{

/** Free-list allocator of KV-cache blocks with refcounts. */
class BlockManager
{
  public:
    /**
     * @param num_blocks pool capacity in blocks
     * @param block_size tokens per block
     */
    BlockManager(i64 num_blocks, i64 block_size);

    i64 numBlocks() const { return num_blocks_; }
    i64 blockSize() const { return block_size_; }
    i64 numFree() const { return static_cast<i64>(free_list_.size()); }
    i64 numAllocated() const { return num_blocks_ - numFree(); }

    /** Blocks needed to store @p tokens tokens. */
    i64 blocksFor(i64 tokens) const;

    /** Allocate one block (refcount = 1). */
    Result<i32> allocBlock();

    /** Increase the refcount (prefix sharing / copy-on-write support). */
    Status addRef(i32 block);

    /** Drop a reference; the block is freed when the count hits zero. */
    Status freeBlock(i32 block);

    int refCount(i32 block) const;

    /** Conservation check for tests. */
    bool checkInvariants() const;

  private:
    i64 num_blocks_;
    i64 block_size_;
    std::vector<i32> free_list_;
    std::vector<int> ref_counts_;
};

/**
 * The per-request logical-to-physical block list a PagedAttention
 * serving framework maintains, mirroring what the OS page table already
 * does (Figure 1 of the paper).
 */
class RequestBlocks
{
  public:
    explicit RequestBlocks(BlockManager *manager);
    ~RequestBlocks();

    RequestBlocks(const RequestBlocks &) = delete;
    RequestBlocks &operator=(const RequestBlocks &) = delete;
    RequestBlocks(RequestBlocks &&other) noexcept;
    RequestBlocks &operator=(RequestBlocks &&other) noexcept;

    /** Grow the block list to cover @p tokens tokens. */
    Status ensureTokens(i64 tokens);

    /**
     * Share the parent's blocks covering the first @p prefix_tokens
     * tokens (prefix de-duplication, as in vLLM's prefix caching):
     * full blocks are reference-counted rather than copied. This list
     * must be empty. Writes into shared blocks must go through
     * PagedKvCache::ensurePrivate (copy-on-write).
     */
    Status shareFrom(const RequestBlocks &parent, i64 prefix_tokens);

    /**
     * Swap the block at @p index for @p new_block (whose reference
     * the caller transfers in), dropping this list's reference on the
     * old block. Used by the copy-on-write path.
     */
    Status replaceBlock(std::size_t index, i32 new_block);

    /** Release all blocks back to the manager. */
    void releaseAll();

    i64 numTokensCapacity() const;
    const std::vector<i32> &blocks() const { return blocks_; }

  private:
    BlockManager *manager_;
    std::vector<i32> blocks_;
};

} // namespace vattn::paged

#endif // VATTN_PAGED_BLOCK_MANAGER_HH
