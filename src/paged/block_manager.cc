#include "paged/block_manager.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace vattn::paged
{

BlockManager::BlockManager(i64 num_blocks, i64 block_size,
                           bool enable_prefix_cache, i64 num_cpu_blocks)
    : num_blocks_(num_blocks), block_size_(block_size),
      prefix_cache_(enable_prefix_cache),
      num_cpu_blocks_(num_cpu_blocks),
      cpu_in_use_(static_cast<std::size_t>(num_cpu_blocks), false),
      ref_counts_(static_cast<std::size_t>(num_blocks), 0),
      block_hash_(static_cast<std::size_t>(num_blocks), 0),
      has_hash_(static_cast<std::size_t>(num_blocks), false),
      evictable_pos_(static_cast<std::size_t>(num_blocks)),
      is_evictable_(static_cast<std::size_t>(num_blocks), false)
{
    fatal_if(num_blocks <= 0, "BlockManager needs > 0 blocks");
    fatal_if(block_size <= 0, "BlockManager needs > 0 block size");
    fatal_if(num_cpu_blocks < 0, "negative CPU block pool");
    free_list_.resize(static_cast<std::size_t>(num_blocks));
    // Hand out low block ids first (stable, test friendly).
    std::iota(free_list_.rbegin(), free_list_.rend(), 0);
    cpu_free_list_.resize(static_cast<std::size_t>(num_cpu_blocks));
    std::iota(cpu_free_list_.rbegin(), cpu_free_list_.rend(), 0);
}

void
BlockManager::dropHash(i32 block)
{
    const auto idx = static_cast<std::size_t>(block);
    if (!has_hash_[idx]) {
        return;
    }
    auto it = hash_to_block_.find(block_hash_[idx]);
    if (it != hash_to_block_.end() && it->second == block) {
        hash_to_block_.erase(it);
    }
    has_hash_[idx] = false;
}

i64
BlockManager::blocksFor(i64 tokens) const
{
    return static_cast<i64>(
        ceilDiv(static_cast<u64>(tokens), static_cast<u64>(block_size_)));
}

Result<i32>
BlockManager::allocBlock()
{
    if (!free_list_.empty()) {
        const i32 block = free_list_.back();
        free_list_.pop_back();
        ref_counts_[static_cast<std::size_t>(block)] = 1;
        return block;
    }
    if (!evictable_.empty()) {
        // Evict the least recently parked cached block: its prefix
        // entry is gone, its storage is reused.
        const i32 block = evictable_.front();
        evictable_.pop_front();
        is_evictable_[static_cast<std::size_t>(block)] = false;
        dropHash(block);
        ref_counts_[static_cast<std::size_t>(block)] = 1;
        return block;
    }
    return Result<i32>(ErrorCode::kOutOfMemory, "block pool empty");
}

Status
BlockManager::addRef(i32 block)
{
    if (block < 0 || block >= num_blocks_) {
        return errorStatus(ErrorCode::kInvalidArgument, "bad block id");
    }
    auto &count = ref_counts_[static_cast<std::size_t>(block)];
    if (count == 0) {
        return errorStatus(ErrorCode::kFailedPrecondition,
                           "addRef on free block");
    }
    ++count;
    return Status::ok();
}

Status
BlockManager::freeBlock(i32 block)
{
    if (block < 0 || block >= num_blocks_) {
        return errorStatus(ErrorCode::kInvalidArgument, "bad block id");
    }
    auto &count = ref_counts_[static_cast<std::size_t>(block)];
    if (count == 0) {
        return errorStatus(ErrorCode::kFailedPrecondition, "double free");
    }
    if (--count == 0) {
        const auto idx = static_cast<std::size_t>(block);
        // Park only when this block is still the hash map's holder of
        // its hash (a newer block may have superseded it).
        if (prefix_cache_ && has_hash_[idx] &&
            lookupHash(block_hash_[idx]) == block) {
            // Park for prefix reuse instead of freeing.
            evictable_.push_back(block);
            evictable_pos_[idx] = std::prev(evictable_.end());
            is_evictable_[idx] = true;
        } else {
            dropHash(block);
            free_list_.push_back(block);
        }
    }
    return Status::ok();
}

void
BlockManager::setBlockHash(i32 block, u64 hash)
{
    if (!prefix_cache_) {
        return;
    }
    panic_if(block < 0 || block >= num_blocks_, "bad block id");
    const auto idx = static_cast<std::size_t>(block);
    panic_if(ref_counts_[idx] == 0, "setBlockHash on a free block");
    dropHash(block);
    // Supersede any previous holder of this hash: a parked copy can
    // never be found again (the map points here now), so free it; a
    // live holder just loses its tag and will free normally.
    auto it = hash_to_block_.find(hash);
    if (it != hash_to_block_.end() && it->second != block) {
        const i32 old = it->second;
        const auto old_idx = static_cast<std::size_t>(old);
        has_hash_[old_idx] = false;
        if (is_evictable_[old_idx]) {
            evictable_.erase(evictable_pos_[old_idx]);
            is_evictable_[old_idx] = false;
            free_list_.push_back(old);
        }
    }
    block_hash_[idx] = hash;
    has_hash_[idx] = true;
    hash_to_block_[hash] = block; // latest block wins
}

i32
BlockManager::lookupHash(u64 hash) const
{
    auto it = hash_to_block_.find(hash);
    return it == hash_to_block_.end() ? -1 : it->second;
}

Status
BlockManager::refSharedBlock(i32 block)
{
    if (block < 0 || block >= num_blocks_) {
        return errorStatus(ErrorCode::kInvalidArgument, "bad block id");
    }
    const auto idx = static_cast<std::size_t>(block);
    if (ref_counts_[idx] > 0) {
        ++ref_counts_[idx];
        return Status::ok();
    }
    if (!is_evictable_[idx]) {
        return errorStatus(ErrorCode::kFailedPrecondition,
                           "refSharedBlock on a free block");
    }
    evictable_.erase(evictable_pos_[idx]);
    is_evictable_[idx] = false;
    ref_counts_[idx] = 1;
    return Status::ok();
}

Result<i32>
BlockManager::swapOutBlock(i32 block)
{
    if (block < 0 || block >= num_blocks_) {
        return Result<i32>(ErrorCode::kInvalidArgument, "bad block id");
    }
    const auto idx = static_cast<std::size_t>(block);
    if (ref_counts_[idx] != 1) {
        // Shared (prefix-aliased) blocks never leave the device while
        // another request references them; free blocks cannot move.
        return Result<i32>(ErrorCode::kFailedPrecondition,
                           ref_counts_[idx] == 0
                               ? "swapOutBlock on a free block"
                               : "block shared with another request");
    }
    if (cpu_free_list_.empty()) {
        return Result<i32>(ErrorCode::kOutOfMemory,
                           num_cpu_blocks_ == 0 ? "CPU pool disabled"
                                                : "CPU pool full");
    }
    const i32 cpu_block = cpu_free_list_.back();
    cpu_free_list_.pop_back();
    cpu_in_use_[static_cast<std::size_t>(cpu_block)] = true;
    // The content leaves the device: the hash entry must go with it
    // (a later prefix match may not adopt a block that is not there).
    dropHash(block);
    ref_counts_[idx] = 0;
    free_list_.push_back(block);
    return cpu_block;
}

Result<i32>
BlockManager::swapInBlock(i32 cpu_block)
{
    if (cpu_block < 0 || cpu_block >= num_cpu_blocks_ ||
        !cpu_in_use_[static_cast<std::size_t>(cpu_block)]) {
        return Result<i32>(ErrorCode::kInvalidArgument,
                           "bad CPU block id");
    }
    auto block = allocBlock();
    if (!block.isOk()) {
        return block; // device pool full: caller preempts/waits
    }
    cpu_in_use_[static_cast<std::size_t>(cpu_block)] = false;
    cpu_free_list_.push_back(cpu_block);
    return block;
}

Result<i32>
BlockManager::acquireCpuBlock()
{
    if (cpu_free_list_.empty()) {
        return Result<i32>(ErrorCode::kOutOfMemory,
                           num_cpu_blocks_ == 0 ? "CPU pool disabled"
                                                : "CPU pool full");
    }
    const i32 cpu_block = cpu_free_list_.back();
    cpu_free_list_.pop_back();
    cpu_in_use_[static_cast<std::size_t>(cpu_block)] = true;
    return cpu_block;
}

Status
BlockManager::freeCpuBlock(i32 cpu_block)
{
    if (cpu_block < 0 || cpu_block >= num_cpu_blocks_ ||
        !cpu_in_use_[static_cast<std::size_t>(cpu_block)]) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "bad CPU block id");
    }
    cpu_in_use_[static_cast<std::size_t>(cpu_block)] = false;
    cpu_free_list_.push_back(cpu_block);
    return Status::ok();
}

int
BlockManager::refCount(i32 block) const
{
    panic_if(block < 0 || block >= num_blocks_, "bad block id");
    return ref_counts_[static_cast<std::size_t>(block)];
}

bool
BlockManager::checkInvariants() const
{
    audit::AuditReport report;
    auditInto(report);
    return report.ok();
}

i64
BlockManager::totalRefCount() const
{
    i64 total = 0;
    for (int count : ref_counts_) {
        total += count;
    }
    return total;
}

void
BlockManager::auditInto(audit::AuditReport &report) const
{
    i64 zero_holders = 0;
    for (i32 block : free_list_) {
        if (block < 0 || block >= num_blocks_) {
            report.fail("block_manager: free list holds out-of-range "
                        "block ", block);
            continue;
        }
        if (ref_counts_[static_cast<std::size_t>(block)] != 0 ||
            is_evictable_[static_cast<std::size_t>(block)]) {
            report.fail("block_manager: free block ", block,
                        " has refcount ",
                        ref_counts_[static_cast<std::size_t>(block)],
                        " / evictable=",
                        is_evictable_[static_cast<std::size_t>(block)],
                        " (free blocks must be unreferenced and "
                        "unparked)");
        }
        ++zero_holders;
    }
    for (i32 block : evictable_) {
        // Evictable blocks keep their hash entry and refcount 0.
        const auto idx = static_cast<std::size_t>(block);
        if (ref_counts_[idx] != 0 || !is_evictable_[idx] ||
            !has_hash_[idx] ||
            lookupHash(block_hash_[idx]) != block) {
            report.fail("block_manager: evictable block ", block,
                        " lost its refcount-0 / hashed / "
                        "hash-map-backed shape");
        }
        ++zero_holders;
    }
    i64 zero_refs = 0;
    for (int count : ref_counts_) {
        if (count == 0) {
            ++zero_refs;
        }
    }
    report.check(zero_holders == zero_refs,
                 "block_manager: ", zero_refs,
                 " blocks have refcount 0 but free+evictable lists "
                 "hold ", zero_holders,
                 " (a freed block fell off both lists or a live block "
                 "is parked)");
    // CPU pool conservation: every CPU block is either free or in use.
    i64 cpu_used = 0;
    for (i32 cpu_block : cpu_free_list_) {
        if (cpu_block < 0 || cpu_block >= num_cpu_blocks_ ||
            cpu_in_use_[static_cast<std::size_t>(cpu_block)]) {
            report.fail("block_manager: CPU free list holds invalid "
                        "or in-use block ", cpu_block);
        }
    }
    for (bool used : cpu_in_use_) {
        cpu_used += used ? 1 : 0;
    }
    report.check(cpu_used + numCpuFree() == num_cpu_blocks_,
                 "block_manager: ", cpu_used, " in-use + ",
                 numCpuFree(), " free CPU blocks != pool size ",
                 num_cpu_blocks_);
}

RequestBlocks::RequestBlocks(BlockManager *manager)
    : manager_(manager)
{
    panic_if(!manager_, "RequestBlocks with null manager");
}

RequestBlocks::~RequestBlocks()
{
    releaseAll();
}

RequestBlocks::RequestBlocks(RequestBlocks &&other) noexcept
    : manager_(other.manager_), blocks_(std::move(other.blocks_)),
      lead_(other.lead_)
{
    other.blocks_.clear();
    other.lead_ = 0;
}

RequestBlocks &
RequestBlocks::operator=(RequestBlocks &&other) noexcept
{
    if (this != &other) {
        releaseAll();
        manager_ = other.manager_;
        blocks_ = std::move(other.blocks_);
        lead_ = other.lead_;
        other.blocks_.clear();
        other.lead_ = 0;
    }
    return *this;
}

Status
RequestBlocks::ensureTokens(i64 tokens)
{
    const i64 need = manager_->blocksFor(tokens);
    while (static_cast<i64>(blocks_.size()) < need) {
        auto block = manager_->allocBlock();
        if (!block.isOk()) {
            return block.status();
        }
        blocks_.push_back(block.value());
    }
    return Status::ok();
}

void
RequestBlocks::advanceLeadTo(i64 lead_blocks)
{
    if (lead_blocks <= lead_) {
        return; // the lead never rewinds
    }
    if (blocks_.empty()) {
        // A fresh list whose context already outran the window: skip
        // the dead region without ever allocating it.
        blocks_.assign(static_cast<std::size_t>(lead_blocks), kNoBlock);
        lead_ = lead_blocks;
        return;
    }
    const i64 stop =
        std::min(lead_blocks, static_cast<i64>(blocks_.size()));
    while (lead_ < stop) {
        i32 &entry = blocks_[static_cast<std::size_t>(lead_)];
        if (entry != kNoBlock) {
            manager_->freeBlock(entry).expectOk(
                "free dead window-lead block");
            entry = kNoBlock;
        }
        ++lead_;
    }
    // A lead past the current frontier extends the table with dead
    // entries (the next ensureTokens grows from there).
    if (lead_blocks > static_cast<i64>(blocks_.size())) {
        blocks_.resize(static_cast<std::size_t>(lead_blocks), kNoBlock);
        lead_ = lead_blocks;
    }
}

Status
RequestBlocks::shareFrom(const RequestBlocks &parent, i64 prefix_tokens)
{
    if (!blocks_.empty()) {
        return errorStatus(ErrorCode::kFailedPrecondition,
                           "shareFrom on a non-empty block list");
    }
    if (manager_ != parent.manager_) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "parent uses a different block pool");
    }
    if (parent.lead_ != 0) {
        return errorStatus(ErrorCode::kFailedPrecondition,
                           "parent's leading blocks were freed by a "
                           "sliding window; no intact prefix to share");
    }
    // Only whole blocks can be shared; a partial tail block would mix
    // two requests' tokens.
    const auto shared = static_cast<std::size_t>(
        prefix_tokens / manager_->blockSize());
    if (shared > parent.blocks_.size()) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "prefix longer than the parent's cache");
    }
    for (std::size_t i = 0; i < shared; ++i) {
        const i32 block = parent.blocks_[i];
        auto status = manager_->addRef(block);
        if (!status.isOk()) {
            releaseAll();
            return status;
        }
        blocks_.push_back(block);
    }
    return Status::ok();
}

Status
RequestBlocks::replaceBlock(std::size_t index, i32 new_block)
{
    if (index >= blocks_.size()) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "block index out of range");
    }
    if (static_cast<i64>(index) < lead_) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "block index inside the dead window lead");
    }
    auto status = manager_->freeBlock(blocks_[index]);
    if (!status.isOk()) {
        return status;
    }
    blocks_[index] = new_block;
    return Status::ok();
}

void
RequestBlocks::adoptBlock(i32 block)
{
    blocks_.push_back(block);
}

std::vector<i32>
RequestBlocks::releaseForSwap()
{
    std::vector<i32> blocks = std::move(blocks_);
    blocks_.clear();
    lead_ = 0;
    return blocks;
}

void
RequestBlocks::releaseAll()
{
    for (i32 block : blocks_) {
        if (block != kNoBlock) {
            manager_->freeBlock(block).expectOk(
                "RequestBlocks release");
        }
    }
    blocks_.clear();
    lead_ = 0;
}

i64
RequestBlocks::numTokensCapacity() const
{
    return static_cast<i64>(blocks_.size()) * manager_->blockSize();
}

} // namespace vattn::paged
