#include "paged/paged_kv_cache.hh"

#include "common/logging.hh"

namespace vattn::paged
{

PagedKvCache::PagedKvCache(cuvmm::Driver &driver, const Config &config)
    : driver_(driver), config_(config),
      manager_(config.num_blocks, config.block_size)
{
    fatal_if(config_.num_layers <= 0, "need >= 1 layer");
    const tensor::Shape pool_shape{
        config_.num_blocks, config_.block_size,
        config_.num_kv_heads, config_.head_dim};
    const u64 pool_bytes = static_cast<u64>(pool_shape.numel()) *
                           tensor::dtypeBytes(config_.dtype);

    for (int layer = 0; layer < config_.num_layers; ++layer) {
        for (int which = 0; which < 2; ++which) {
            Addr base = 0;
            const auto r = driver_.cudaMalloc(&base, pool_bytes);
            fatal_if(r != cuvmm::CuResult::kSuccess,
                     "PagedKvCache pool allocation failed: ",
                     cuvmm::toString(r));
            auto &bases = which == 0 ? k_base_ : v_base_;
            auto &pools = which == 0 ? k_pool_ : v_pool_;
            bases.push_back(base);
            pools.emplace_back(&driver_.device(), base,
                               tensor::Layout::contiguous(pool_shape),
                               config_.dtype);
        }
    }
}

PagedKvCache::~PagedKvCache()
{
    for (Addr base : k_base_) {
        driver_.cudaFree(base);
    }
    for (Addr base : v_base_) {
        driver_.cudaFree(base);
    }
}

tensor::VirtualTensor &
PagedKvCache::kPool(int layer)
{
    panic_if(layer < 0 || layer >= config_.num_layers, "bad layer");
    return k_pool_[static_cast<std::size_t>(layer)];
}

tensor::VirtualTensor &
PagedKvCache::vPool(int layer)
{
    panic_if(layer < 0 || layer >= config_.num_layers, "bad layer");
    return v_pool_[static_cast<std::size_t>(layer)];
}

attn::PagedKvView
PagedKvCache::view(const std::vector<i32> &blocks, int layer,
                   bool touch_tlb)
{
    return attn::PagedKvView(kPool(layer), vPool(layer), blocks,
                             config_.block_size, touch_tlb);
}

Result<i32>
PagedKvCache::ensurePrivate(RequestBlocks &blocks, i64 token)
{
    const auto index =
        static_cast<std::size_t>(token / config_.block_size);
    if (index >= blocks.blocks().size()) {
        return Result<i32>(ErrorCode::kInvalidArgument,
                           "token beyond the allocated blocks");
    }
    const i32 old_block = blocks.blocks()[index];
    if (manager_.refCount(old_block) <= 1) {
        return old_block; // already private
    }
    auto fresh = manager_.allocBlock();
    if (!fresh.isOk()) {
        return Result<i32>(fresh.status());
    }
    copyBlockData(fresh.value(), old_block);
    auto status = blocks.replaceBlock(index, fresh.value());
    status.expectOk("copy-on-write swap");
    return fresh.value();
}

void
PagedKvCache::copyBlockData(i32 dst, i32 src)
{
    panic_if(dst < 0 || dst >= config_.num_blocks, "bad dst block");
    panic_if(src < 0 || src >= config_.num_blocks, "bad src block");
    std::vector<float> row(static_cast<std::size_t>(config_.head_dim));
    for (int layer = 0; layer < config_.num_layers; ++layer) {
        for (auto *pool : {&kPool(layer), &vPool(layer)}) {
            for (i64 t = 0; t < config_.block_size; ++t) {
                for (int h = 0; h < config_.num_kv_heads; ++h) {
                    const i64 src_idx[4] = {src, t, h, 0};
                    const i64 dst_idx[4] = {dst, t, h, 0};
                    pool->readRow(src_idx, 4, row.data(),
                                  config_.head_dim);
                    pool->writeRow(dst_idx, 4, row.data(),
                                   config_.head_dim);
                }
            }
        }
    }
}

u64
PagedKvCache::committedBytes() const
{
    const u64 per_pool =
        static_cast<u64>(config_.num_blocks * config_.block_size *
                         config_.num_kv_heads * config_.head_dim) *
        tensor::dtypeBytes(config_.dtype);
    return per_pool * 2 * static_cast<u64>(config_.num_layers);
}

} // namespace vattn::paged
