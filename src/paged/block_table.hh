/**
 * @file
 * Block-Table construction, modelling the CPU-side work PagedAttention
 * adds to every iteration (§3.3.2):
 *
 *  - vLLM keeps a padded 2D tensor [batch, max_num_blocks]; preparation
 *    cost grows with batch_size * max_num_blocks because short requests
 *    are padded to the longest one.
 *  - FlashInfer uses a compressed (CSR) representation, cheaper to scan
 *    but requiring per-iteration object creation/deletion.
 *
 * vAttention needs neither — the whole point of virtual contiguity.
 */

#ifndef VATTN_PAGED_BLOCK_TABLE_HH
#define VATTN_PAGED_BLOCK_TABLE_HH

#include <vector>

#include "common/types.hh"

namespace vattn::paged
{

/** vLLM-style padded 2D Block-Table. */
struct PaddedBlockTable
{
    i64 batch = 0;
    i64 max_blocks = 0;          ///< blocks in the longest request
    std::vector<i32> entries;    ///< batch * max_blocks, -1 padded

    /** Build from per-request block lists. */
    static PaddedBlockTable
    build(const std::vector<const std::vector<i32> *> &request_blocks);

    /** Number of tensor slots written (the CPU cost driver). */
    i64 numEntries() const { return batch * max_blocks; }

    i32 at(i64 request, i64 slot) const;
};

/** FlashInfer-style compressed (CSR) Block-Table. */
struct CompressedBlockTable
{
    std::vector<i32> indptr;  ///< batch+1 offsets
    std::vector<i32> indices; ///< concatenated block ids

    static CompressedBlockTable
    build(const std::vector<const std::vector<i32> *> &request_blocks);

    i64 numEntries() const { return static_cast<i64>(indices.size()); }
    i64 batch() const { return static_cast<i64>(indptr.size()) - 1; }

    /** Blocks of one request as a span [begin, end). */
    std::pair<const i32 *, const i32 *> row(i64 request) const;
};

} // namespace vattn::paged

#endif // VATTN_PAGED_BLOCK_TABLE_HH
