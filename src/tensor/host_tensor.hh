/**
 * @file
 * Owning host-side fp32 tensor for kernel inputs/outputs (queries,
 * attention outputs, reference results).
 */

#ifndef VATTN_TENSOR_HOST_TENSOR_HH
#define VATTN_TENSOR_HOST_TENSOR_HH

#include <vector>

#include "common/rng.hh"
#include "tensor/shape.hh"

namespace vattn::tensor
{

/** Dense row-major fp32 tensor in host memory. */
class HostTensor
{
  public:
    HostTensor() = default;
    explicit HostTensor(const Shape &shape);

    const Shape &shape() const { return shape_; }
    i64 numel() const { return shape_.numel(); }

    float &at(std::initializer_list<i64> idx);
    float at(std::initializer_list<i64> idx) const;

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Pointer to the row at the given leading indices. */
    float *row(std::initializer_list<i64> idx);
    const float *row(std::initializer_list<i64> idx) const;

    void fill(float value);
    void fillRandom(Rng &rng, float lo = -1.0f, float hi = 1.0f);

    /** Largest absolute difference against another tensor. */
    float maxAbsDiff(const HostTensor &other) const;

  private:
    Shape shape_;
    Layout layout_;
    std::vector<float> data_;
};

} // namespace vattn::tensor

#endif // VATTN_TENSOR_HOST_TENSOR_HH
