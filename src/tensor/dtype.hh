/**
 * @file
 * Element types supported by the tensor layer. The paper's evaluation
 * uses FP16 KV caches (P = 2, Table 2); FP32 is provided for reference
 * kernels and tests.
 */

#ifndef VATTN_TENSOR_DTYPE_HH
#define VATTN_TENSOR_DTYPE_HH

#include "common/types.hh"

namespace vattn::tensor
{

enum class DType : u8
{
    kF16,
    kF32,
};

constexpr u64
dtypeBytes(DType dt)
{
    switch (dt) {
      case DType::kF16: return 2;
      case DType::kF32: return 4;
    }
    return 0;
}

constexpr const char *
toString(DType dt)
{
    switch (dt) {
      case DType::kF16: return "f16";
      case DType::kF32: return "f32";
    }
    return "?";
}

} // namespace vattn::tensor

#endif // VATTN_TENSOR_DTYPE_HH
