#include "tensor/host_tensor.hh"

#include <cmath>

#include "common/logging.hh"

namespace vattn::tensor
{

HostTensor::HostTensor(const Shape &shape)
    : shape_(shape), layout_(Layout::contiguous(shape)),
      data_(static_cast<std::size_t>(shape.numel()), 0.0f)
{
}

float &
HostTensor::at(std::initializer_list<i64> idx)
{
    return data_[static_cast<std::size_t>(layout_.at(idx))];
}

float
HostTensor::at(std::initializer_list<i64> idx) const
{
    return data_[static_cast<std::size_t>(layout_.at(idx))];
}

float *
HostTensor::row(std::initializer_list<i64> idx)
{
    // Index a prefix of the dimensions; remaining dims give the row.
    i64 off = 0;
    int i = 0;
    for (i64 v : idx) {
        panic_if(i >= shape_.rank(), "row index rank too large");
        panic_if(v < 0 || v >= shape_.dim(i), "row index out of bounds");
        off += v * layout_.strides[static_cast<std::size_t>(i)];
        ++i;
    }
    return data_.data() + off;
}

const float *
HostTensor::row(std::initializer_list<i64> idx) const
{
    return const_cast<HostTensor *>(this)->row(idx);
}

void
HostTensor::fill(float value)
{
    for (float &x : data_) {
        x = value;
    }
}

void
HostTensor::fillRandom(Rng &rng, float lo, float hi)
{
    for (float &x : data_) {
        x = static_cast<float>(rng.uniform(lo, hi));
    }
}

float
HostTensor::maxAbsDiff(const HostTensor &other) const
{
    panic_if(!(shape_ == other.shape_), "shape mismatch in maxAbsDiff");
    float worst = 0.0f;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
    }
    return worst;
}

} // namespace vattn::tensor
