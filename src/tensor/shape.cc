#include "tensor/shape.hh"

#include <sstream>

#include "common/logging.hh"

namespace vattn::tensor
{

Shape::Shape(std::initializer_list<i64> dims)
{
    panic_if(dims.size() > kMaxDims, "too many dimensions");
    for (i64 d : dims) {
        panic_if(d <= 0, "non-positive dimension ", d);
        dims_[static_cast<std::size_t>(rank_++)] = d;
    }
}

i64
Shape::dim(int i) const
{
    panic_if(i < 0 || i >= rank_, "dim index ", i, " out of rank ", rank_);
    return dims_[static_cast<std::size_t>(i)];
}

i64
Shape::numel() const
{
    i64 n = 1;
    for (int i = 0; i < rank_; ++i) {
        n *= dims_[static_cast<std::size_t>(i)];
    }
    return rank_ == 0 ? 0 : n;
}

std::array<i64, Shape::kMaxDims>
Shape::contiguousStrides() const
{
    std::array<i64, kMaxDims> strides{};
    i64 acc = 1;
    for (int i = rank_ - 1; i >= 0; --i) {
        strides[static_cast<std::size_t>(i)] = acc;
        acc *= dims_[static_cast<std::size_t>(i)];
    }
    return strides;
}

bool
Shape::operator==(const Shape &o) const
{
    if (rank_ != o.rank_) {
        return false;
    }
    for (int i = 0; i < rank_; ++i) {
        if (dim(i) != o.dim(i)) {
            return false;
        }
    }
    return true;
}

std::string
Shape::toString() const
{
    std::ostringstream oss;
    oss << "[";
    for (int i = 0; i < rank_; ++i) {
        oss << (i ? ", " : "") << dim(i);
    }
    oss << "]";
    return oss.str();
}

Layout
Layout::contiguous(const Shape &shape)
{
    Layout layout;
    layout.shape = shape;
    layout.strides = shape.contiguousStrides();
    layout.offset = 0;
    return layout;
}

i64
Layout::at(const i64 *idx, int n) const
{
    panic_if(n != shape.rank(), "index rank ", n, " != tensor rank ",
             shape.rank());
    i64 off = offset;
    for (int i = 0; i < n; ++i) {
        panic_if(idx[i] < 0 || idx[i] >= shape.dim(i),
                 "index ", idx[i], " out of bounds for dim ", i,
                 " of size ", shape.dim(i));
        off += idx[i] * strides[static_cast<std::size_t>(i)];
    }
    return off;
}

i64
Layout::at(std::initializer_list<i64> idx) const
{
    return at(idx.begin(), static_cast<int>(idx.size()));
}

bool
Layout::isContiguous() const
{
    if (offset != 0) {
        return false;
    }
    const auto expect = shape.contiguousStrides();
    for (int i = 0; i < shape.rank(); ++i) {
        if (strides[static_cast<std::size_t>(i)] !=
            expect[static_cast<std::size_t>(i)]) {
            return false;
        }
    }
    return true;
}

Layout
Layout::slice(int dim, i64 start, i64 len) const
{
    panic_if(dim < 0 || dim >= shape.rank(), "slice dim out of range");
    panic_if(start < 0 || len <= 0 || start + len > shape.dim(dim),
             "slice [", start, ", ", start + len, ") out of dim size ",
             shape.dim(dim));
    Layout out = *this;
    out.offset += start * strides[static_cast<std::size_t>(dim)];
    // Rebuild the shape with the new dim size.
    std::array<i64, Shape::kMaxDims> dims{};
    for (int i = 0; i < shape.rank(); ++i) {
        dims[static_cast<std::size_t>(i)] = shape.dim(i);
    }
    dims[static_cast<std::size_t>(dim)] = len;
    Shape new_shape;
    switch (shape.rank()) {
      case 1: new_shape = Shape{dims[0]}; break;
      case 2: new_shape = Shape{dims[0], dims[1]}; break;
      case 3: new_shape = Shape{dims[0], dims[1], dims[2]}; break;
      case 4:
        new_shape = Shape{dims[0], dims[1], dims[2], dims[3]};
        break;
      case 5:
        new_shape = Shape{dims[0], dims[1], dims[2], dims[3], dims[4]};
        break;
      default: panic("unsupported rank");
    }
    out.shape = new_shape;
    return out;
}

Layout
Layout::squeeze(int dim) const
{
    panic_if(dim < 0 || dim >= shape.rank(), "squeeze dim out of range");
    panic_if(shape.dim(dim) != 1, "squeeze on non-unit dim");
    Layout out;
    out.offset = offset;
    std::array<i64, Shape::kMaxDims> dims{};
    int r = 0;
    for (int i = 0; i < shape.rank(); ++i) {
        if (i == dim) {
            continue;
        }
        dims[static_cast<std::size_t>(r)] = shape.dim(i);
        out.strides[static_cast<std::size_t>(r)] =
            strides[static_cast<std::size_t>(i)];
        ++r;
    }
    switch (r) {
      case 1: out.shape = Shape{dims[0]}; break;
      case 2: out.shape = Shape{dims[0], dims[1]}; break;
      case 3: out.shape = Shape{dims[0], dims[1], dims[2]}; break;
      case 4:
        out.shape = Shape{dims[0], dims[1], dims[2], dims[3]};
        break;
      default: panic("unsupported rank after squeeze");
    }
    return out;
}

} // namespace vattn::tensor
