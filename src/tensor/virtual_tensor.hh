/**
 * @file
 * Virtual tensors (§5.2.2): tensors whose storage is a device *virtual*
 * address range that may be only partially backed by physical memory.
 * This is the paper's extension of the framework tensor abstraction —
 * torch.empty gives you committed memory, a virtual tensor gives you a
 * reservation that the vAttention runtime backs page-group by
 * page-group as the KV cache grows.
 *
 * Element reads/writes go through the simulated MMU: touching an
 * unbacked region faults (panics), exactly like a GPU kernel would.
 */

#ifndef VATTN_TENSOR_VIRTUAL_TENSOR_HH
#define VATTN_TENSOR_VIRTUAL_TENSOR_HH

#include "common/fp16.hh"
#include "gpu/device.hh"
#include "tensor/dtype.hh"
#include "tensor/shape.hh"

namespace vattn::tensor
{

/** A (possibly strided) view over a device virtual address range. */
class VirtualTensor
{
  public:
    VirtualTensor() = default;

    /**
     * @param device device whose VA space backs the tensor
     * @param base   starting virtual address (element 0 before offset)
     * @param layout shape/strides/offset of the view
     * @param dtype  element type
     */
    VirtualTensor(gpu::GpuDevice *device, Addr base, Layout layout,
                  DType dtype);

    bool valid() const { return device_ != nullptr; }
    const Shape &shape() const { return layout_.shape; }
    const Layout &layout() const { return layout_; }
    DType dtype() const { return dtype_; }
    Addr baseVa() const { return base_; }
    gpu::GpuDevice *device() const { return device_; }

    /** Virtual address of the element at the given indices. */
    Addr elemVa(std::initializer_list<i64> idx) const;
    Addr elemVa(const i64 *idx, int n) const;

    /** Read one element as fp32 (converting from storage type). */
    float readElem(std::initializer_list<i64> idx) const;
    /** Write one element from fp32 (converting to storage type). */
    void writeElem(std::initializer_list<i64> idx, float value);

    /**
     * Bulk read of @p count contiguous elements starting at the given
     * indices (last dimension must be stride-1 across the span).
     */
    void readRow(const i64 *idx, int n, float *out, i64 count) const;
    void writeRow(const i64 *idx, int n, const float *in, i64 count);

    /** Strided slice view (shares the same storage). */
    VirtualTensor slice(int dim, i64 start, i64 len) const;
    VirtualTensor squeeze(int dim) const;

    /** Storage footprint of the *dense* shape in bytes. */
    u64 denseBytes() const;

    /** Is every byte of the dense range physically backed + RW? */
    bool fullyBacked() const;

  private:
    gpu::GpuDevice *device_ = nullptr;
    Addr base_ = 0;
    Layout layout_;
    DType dtype_ = DType::kF16;
};

} // namespace vattn::tensor

#endif // VATTN_TENSOR_VIRTUAL_TENSOR_HH
