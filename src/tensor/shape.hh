/**
 * @file
 * Tensor shapes and strides (row-major by default) for up to 5
 * dimensions — enough for the paper's KV layouts: [B, L, H, D] per-layer
 * tensors (§5.1.3) and the [B, L, N, H, D] tensor-slicing layout (§8.2).
 */

#ifndef VATTN_TENSOR_SHAPE_HH
#define VATTN_TENSOR_SHAPE_HH

#include <array>
#include <initializer_list>
#include <string>

#include "common/types.hh"

namespace vattn::tensor
{

/** Fixed-capacity dimension list. */
class Shape
{
  public:
    static constexpr int kMaxDims = 5;

    Shape() = default;
    Shape(std::initializer_list<i64> dims);

    int rank() const { return rank_; }
    i64 dim(int i) const;
    i64 operator[](int i) const { return dim(i); }

    /** Total element count. */
    i64 numel() const;

    /** Row-major (C-contiguous) strides in elements. */
    std::array<i64, kMaxDims> contiguousStrides() const;

    bool operator==(const Shape &o) const;

    std::string toString() const;

  private:
    int rank_ = 0;
    std::array<i64, kMaxDims> dims_{};
};

/**
 * Strided index calculator: maps an index tuple to a linear element
 * offset given explicit strides. Views (slices) share storage with the
 * parent tensor and only change shape/strides/base offset.
 */
struct Layout
{
    Shape shape;
    std::array<i64, Shape::kMaxDims> strides{};
    i64 offset = 0; ///< base offset in elements

    static Layout contiguous(const Shape &shape);

    /** Element offset for an index tuple (rank-checked). */
    i64 at(std::initializer_list<i64> idx) const;
    i64 at(const i64 *idx, int n) const;

    /** True iff the layout is dense row-major with offset 0. */
    bool isContiguous() const;

    /**
     * Slice dimension @p dim to [start, start+len): same rank,
     * adjusted offset and dim size.
     */
    Layout slice(int dim, i64 start, i64 len) const;

    /** Drop a size-1 dimension. */
    Layout squeeze(int dim) const;
};

} // namespace vattn::tensor

#endif // VATTN_TENSOR_SHAPE_HH
