#include "tensor/virtual_tensor.hh"

#include <vector>

#include "common/logging.hh"

namespace vattn::tensor
{

VirtualTensor::VirtualTensor(gpu::GpuDevice *device, Addr base,
                             Layout layout, DType dtype)
    : device_(device), base_(base), layout_(layout), dtype_(dtype)
{
    panic_if(!device_, "VirtualTensor with null device");
}

Addr
VirtualTensor::elemVa(const i64 *idx, int n) const
{
    const i64 off = layout_.at(idx, n);
    return base_ + static_cast<u64>(off) * dtypeBytes(dtype_);
}

Addr
VirtualTensor::elemVa(std::initializer_list<i64> idx) const
{
    return elemVa(idx.begin(), static_cast<int>(idx.size()));
}

float
VirtualTensor::readElem(std::initializer_list<i64> idx) const
{
    const Addr va = elemVa(idx);
    if (dtype_ == DType::kF16) {
        u16 bits = 0;
        device_->readVa(va, &bits, sizeof(bits));
        return fp16BitsToFp32(bits);
    }
    float v = 0;
    device_->readVa(va, &v, sizeof(v));
    return v;
}

void
VirtualTensor::writeElem(std::initializer_list<i64> idx, float value)
{
    const Addr va = elemVa(idx);
    if (dtype_ == DType::kF16) {
        const u16 bits = fp32ToFp16Bits(value);
        device_->writeVa(va, &bits, sizeof(bits));
        return;
    }
    device_->writeVa(va, &value, sizeof(value));
}

void
VirtualTensor::readRow(const i64 *idx, int n, float *out, i64 count) const
{
    const Addr va = elemVa(idx, n);
    if (dtype_ == DType::kF32) {
        device_->readVa(va, out, static_cast<u64>(count) * sizeof(float));
        return;
    }
    std::vector<u16> bits(static_cast<std::size_t>(count));
    device_->readVa(va, bits.data(),
                    static_cast<u64>(count) * sizeof(u16));
    for (i64 i = 0; i < count; ++i) {
        out[i] = fp16BitsToFp32(bits[static_cast<std::size_t>(i)]);
    }
}

void
VirtualTensor::writeRow(const i64 *idx, int n, const float *in, i64 count)
{
    const Addr va = elemVa(idx, n);
    if (dtype_ == DType::kF32) {
        device_->writeVa(va, in, static_cast<u64>(count) * sizeof(float));
        return;
    }
    std::vector<u16> bits(static_cast<std::size_t>(count));
    for (i64 i = 0; i < count; ++i) {
        bits[static_cast<std::size_t>(i)] =
            fp32ToFp16Bits(in[static_cast<std::size_t>(i)]);
    }
    device_->writeVa(va, bits.data(),
                     static_cast<u64>(count) * sizeof(u16));
}

VirtualTensor
VirtualTensor::slice(int dim, i64 start, i64 len) const
{
    return VirtualTensor(device_, base_, layout_.slice(dim, start, len),
                         dtype_);
}

VirtualTensor
VirtualTensor::squeeze(int dim) const
{
    return VirtualTensor(device_, base_, layout_.squeeze(dim), dtype_);
}

u64
VirtualTensor::denseBytes() const
{
    return static_cast<u64>(layout_.shape.numel()) * dtypeBytes(dtype_);
}

bool
VirtualTensor::fullyBacked() const
{
    return device_->pageTable().isAccessible(base_, denseBytes());
}

} // namespace vattn::tensor
