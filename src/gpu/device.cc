#include "gpu/device.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vattn::gpu
{

GpuDevice::GpuDevice() : GpuDevice(Config{}) {}

GpuDevice::GpuDevice(Config config)
    : config_(config),
      mem_(config.mem_bytes),
      phys_alloc_(config.mem_bytes, config.min_phys_block,
                  config.max_phys_block),
      va_space_(),
      page_table_(),
      tlb_(config.tlb)
{
}

template <typename Fn>
void
GpuDevice::walk(Addr va, u64 size, Fn &&fn) const
{
    while (size > 0) {
        auto xlat = page_table_.translate(va);
        panic_if(!xlat.isOk(), "device fault: VA ", va, " not mapped");
        const Translation &t = xlat.value();
        panic_if(t.access != Access::kReadWrite,
                 "device fault: VA ", va, " mapped without access");
        const u64 in_extent = t.extent_end - va;
        const u64 take = std::min(size, in_extent);
        fn(t.phys, take);
        va += take;
        size -= take;
    }
}

void
GpuDevice::readVa(Addr va, void *buf, u64 size) const
{
    auto *out = static_cast<std::byte *>(buf);
    walk(va, size, [&](PhysAddr pa, u64 n) {
        mem_.read(pa, out, n);
        out += n;
    });
}

void
GpuDevice::writeVa(Addr va, const void *buf, u64 size)
{
    const auto *in = static_cast<const std::byte *>(buf);
    walk(va, size, [&](PhysAddr pa, u64 n) {
        mem_.write(pa, in, n);
        in += n;
    });
}

PhysAddr
GpuDevice::translateTouched(Addr va)
{
    auto xlat = page_table_.translate(va);
    panic_if(!xlat.isOk(), "device fault: VA ", va, " not mapped");
    const Translation &t = xlat.value();
    tlb_.access(va, t.page);
    return t.phys;
}

} // namespace vattn::gpu
