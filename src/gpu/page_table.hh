/**
 * @file
 * Per-device page table. Mappings are created at page-group granularity
 * (one driver call = one physically contiguous range), so the table
 * stores variable-size extents rather than fixed 4KB PTEs; translation
 * also reports the hardware page size backing the extent, which the TLB
 * model consumes.
 *
 * CUDA semantics honoured here: cuMemMap creates a mapping with *no*
 * access rights; cuMemSetAccess grants RW. The paper's vMemMap fuses the
 * two (§6.2), which the driver expresses by mapping with kReadWrite
 * directly.
 */

#ifndef VATTN_GPU_PAGE_TABLE_HH
#define VATTN_GPU_PAGE_TABLE_HH

#include <optional>

#include "common/interval_map.hh"
#include "common/status.hh"
#include "common/types.hh"

namespace vattn::gpu
{

/** Access rights on a mapped extent. */
enum class Access : u8
{
    kNone = 0,   ///< mapped but not accessible (cuMemMap w/o SetAccess)
    kReadWrite,  ///< fully accessible
};

/** Result of a successful translation. */
struct Translation
{
    PhysAddr phys;     ///< physical address for the queried VA
    Addr extent_start; ///< VA where this mapping begins
    Addr extent_end;   ///< VA where this mapping ends (exclusive)
    PageSize page;     ///< hardware page size backing the extent
    Access access;
};

/** Variable-extent page table with exact-range map/unmap. */
class PageTable
{
  public:
    /**
     * Map [va, va+size) -> [pa, pa+size). Both addresses must be
     * aligned to @p page and @p size must be a multiple of it.
     */
    Status map(Addr va, PhysAddr pa, u64 size, PageSize page,
               Access access);

    /**
     * Change access on mapped extents fully covering [va, va+size).
     * Fails without side effects if any byte of the range is unmapped.
     */
    Status setAccess(Addr va, u64 size, Access access);

    /**
     * Remove mappings covering exactly [va, va+size). The range must
     * decompose into whole previously-mapped extents.
     */
    Status unmap(Addr va, u64 size);

    /** Translate one VA; fails if unmapped. Access is NOT enforced
     *  here — the device read/write path checks it. */
    Result<Translation> translate(Addr va) const;

    /** True iff every byte of [va, va+size) is mapped with RW access. */
    bool isAccessible(Addr va, u64 size) const;

    u64 mappedBytes() const { return map_.coveredBytes(); }
    std::size_t numExtents() const { return map_.size(); }

    /** Visit extents intersecting [va, va+size). */
    template <typename Fn>
    void
    forEachExtent(Addr va, u64 size, Fn &&fn) const
    {
        map_.forEachIn(va, va + size, [&](const auto &e) {
            fn(e.start, e.end, e.value.phys, e.value.page, e.value.access);
        });
    }

  private:
    /** Do whole extents tile [va, va + size) exactly? */
    bool coversWholeExtents(Addr va, u64 size) const;

    struct Extent
    {
        PhysAddr phys;
        PageSize page;
        Access access;
    };

    IntervalMap<Extent> map_;
};

} // namespace vattn::gpu

#endif // VATTN_GPU_PAGE_TABLE_HH
