/**
 * @file
 * A simulated GPU device: physical memory + physical allocator + virtual
 * address space + page table + TLB. One GpuDevice per tensor-parallel
 * worker. Functional loads/stores go through virtual addresses exactly
 * like GPU kernels do, enforcing map + access-rights semantics.
 */

#ifndef VATTN_GPU_DEVICE_HH
#define VATTN_GPU_DEVICE_HH

#include <string>

#include "common/status.hh"
#include "common/types.hh"
#include "gpu/buddy_allocator.hh"
#include "gpu/page_table.hh"
#include "gpu/phys_mem.hh"
#include "gpu/tlb.hh"
#include "gpu/va_space.hh"

namespace vattn::gpu
{

/** Ties the memory-system substrates of one device together. */
class GpuDevice
{
  public:
    struct Config
    {
        std::string name = "simA100";
        u64 mem_bytes = 80 * GiB;
        u64 min_phys_block = 4 * KiB;
        u64 max_phys_block = 32 * MiB;
        Tlb::Config tlb = {};
    };

    GpuDevice();
    explicit GpuDevice(Config config);

    const std::string &name() const { return config_.name; }
    u64 memBytes() const { return config_.mem_bytes; }

    PhysicalMemory &mem() { return mem_; }
    BuddyAllocator &physAllocator() { return phys_alloc_; }
    VaSpace &vaSpace() { return va_space_; }
    PageTable &pageTable() { return page_table_; }
    Tlb &tlb() { return tlb_; }
    const PageTable &pageTable() const { return page_table_; }
    const Tlb &tlb() const { return tlb_; }

    /**
     * Functional virtual-address read. Requires every byte to be
     * mapped with RW access; panics on fault like a device would trap.
     */
    void readVa(Addr va, void *buf, u64 size) const;

    /** Functional virtual-address write (same access rules). */
    void writeVa(Addr va, const void *buf, u64 size);

    /**
     * Translate + record a TLB access (for kernel replay). Returns the
     * physical address.
     */
    PhysAddr translateTouched(Addr va);

    /** Free device memory as seen by the physical allocator. */
    u64 freePhysBytes() const { return phys_alloc_.freeBytes(); }

  private:
    /** Walk translations across extent boundaries applying fn(pa, n). */
    template <typename Fn>
    void walk(Addr va, u64 size, Fn &&fn) const;

    Config config_;
    PhysicalMemory mem_;
    BuddyAllocator phys_alloc_;
    VaSpace va_space_;
    PageTable page_table_;
    Tlb tlb_;
};

} // namespace vattn::gpu

#endif // VATTN_GPU_DEVICE_HH
