#include "gpu/buddy_allocator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vattn::gpu
{

BuddyAllocator::BuddyAllocator(u64 capacity, u64 min_block, u64 max_block)
    : capacity_(capacity), min_block_(min_block), max_block_(max_block)
{
    fatal_if(!isPow2(min_block_), "min_block must be a power of two");
    fatal_if(!isPow2(max_block_), "max_block must be a power of two");
    fatal_if(max_block_ < min_block_, "max_block < min_block");
    fatal_if(capacity_ % min_block_ != 0,
             "capacity must be a multiple of min_block");

    num_orders_ = log2Exact(max_block_ / min_block_) + 1;
    free_lists_.resize(num_orders_);

    // Seed the free lists greedily: repeatedly take the largest
    // naturally-aligned power-of-two block that fits the remainder.
    Addr addr = 0;
    u64 remaining = capacity_;
    while (remaining >= min_block_) {
        u64 block = max_block_;
        while (block > remaining || (addr % block) != 0) {
            block >>= 1;
        }
        free_lists_[orderFor(block)].insert(addr);
        addr += block;
        remaining -= block;
    }
}

unsigned
BuddyAllocator::orderFor(u64 size) const
{
    panic_if(size < min_block_ || size > max_block_ || !isPow2(size),
             "bad buddy block size ", size);
    return log2Exact(size / min_block_);
}

u64
BuddyAllocator::sizeOfOrder(unsigned order) const
{
    return min_block_ << order;
}

Result<PhysAddr>
BuddyAllocator::alloc(u64 size)
{
    if (size == 0) {
        return Result<PhysAddr>(ErrorCode::kInvalidArgument, "zero size");
    }
    u64 want = std::max(min_block_, size);
    if (!isPow2(want)) {
        u64 p = min_block_;
        while (p < want) {
            p <<= 1;
        }
        want = p;
    }
    if (want > max_block_) {
        return Result<PhysAddr>(ErrorCode::kInvalidArgument,
                                "request exceeds max block size");
    }

    const unsigned order = orderFor(want);
    // Find the smallest order with a free block.
    unsigned from = order;
    while (from < num_orders_ && free_lists_[from].empty()) {
        ++from;
    }
    if (from >= num_orders_) {
        return Result<PhysAddr>(ErrorCode::kOutOfMemory,
                                "no free block large enough");
    }

    // Pop the lowest-address block and split down to the target order.
    auto it = free_lists_[from].begin();
    PhysAddr addr = *it;
    free_lists_[from].erase(it);
    while (from > order) {
        --from;
        // Put the upper half back; keep the lower half.
        free_lists_[from].insert(addr + sizeOfOrder(from));
    }

    allocated_bytes_ += want;
    live_.emplace(addr, order);
    return addr;
}

Status
BuddyAllocator::free(PhysAddr addr, u64 size)
{
    if (size == 0) {
        return errorStatus(ErrorCode::kInvalidArgument, "zero size free");
    }
    // Accept the original request size: round up exactly like alloc().
    u64 block = std::max(size, min_block_);
    if (!isPow2(block)) {
        u64 p = min_block_;
        while (p < block) {
            p <<= 1;
        }
        block = p;
    }
    if (block > max_block_ || addr % block != 0 ||
        addr + block > capacity_) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "bad free address/size");
    }

    unsigned order = orderFor(block);
    auto live_it = live_.find(addr);
    if (live_it == live_.end()) {
        return errorStatus(ErrorCode::kAlreadyExists,
                           "double free or never allocated");
    }
    if (live_it->second != order) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "free size does not match allocation");
    }
    live_.erase(live_it);

    allocated_bytes_ -= block;

    // Coalesce with the buddy while possible.
    while (order + 1 < num_orders_) {
        const u64 bsize = sizeOfOrder(order);
        const PhysAddr buddy = addr ^ bsize;
        auto it = free_lists_[order].find(buddy);
        if (it == free_lists_[order].end()) {
            break;
        }
        free_lists_[order].erase(it);
        addr = std::min(addr, buddy);
        ++order;
    }
    free_lists_[order].insert(addr);
    return Status::ok();
}

u64
BuddyAllocator::largestFreeBlock() const
{
    for (unsigned order = num_orders_; order-- > 0;) {
        if (!free_lists_[order].empty()) {
            return sizeOfOrder(order);
        }
    }
    return 0;
}

std::size_t
BuddyAllocator::freeBlocksOfSize(u64 size) const
{
    const unsigned order = log2Exact(std::max(size, min_block_) / min_block_);
    if (order >= num_orders_) {
        return 0;
    }
    return free_lists_[order].size();
}

bool
BuddyAllocator::checkInvariants() const
{
    u64 free_total = 0;
    PhysAddr prev_end = 0;
    bool first = true;
    // Gather all blocks across orders sorted by address.
    std::vector<std::pair<PhysAddr, u64>> blocks;
    for (unsigned order = 0; order < num_orders_; ++order) {
        const u64 bsize = sizeOfOrder(order);
        for (PhysAddr a : free_lists_[order]) {
            if (a % bsize != 0 || a + bsize > capacity_) {
                return false;
            }
            blocks.emplace_back(a, bsize);
            free_total += bsize;
        }
    }
    std::sort(blocks.begin(), blocks.end());
    for (const auto &[a, s] : blocks) {
        if (!first && a < prev_end) {
            return false; // overlapping free blocks
        }
        prev_end = a + s;
        first = false;
    }
    return free_total == freeBytes();
}

} // namespace vattn::gpu
