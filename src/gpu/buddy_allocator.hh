/**
 * @file
 * Buddy allocator over device physical memory. cuMemCreate/vMemCreate
 * carve physically contiguous page-groups (64KB..2MB) out of this pool;
 * the buddy discipline keeps external fragmentation bounded and gives the
 * natural power-of-two alignment the MMU needs for large pages.
 */

#ifndef VATTN_GPU_BUDDY_ALLOCATOR_HH
#define VATTN_GPU_BUDDY_ALLOCATOR_HH

#include <set>
#include <unordered_map>
#include <vector>

#include "common/status.hh"
#include "common/types.hh"

namespace vattn::gpu
{

/**
 * Power-of-two buddy allocator. Block sizes range from @p minBlock to
 * @p maxBlock (both powers of two); allocations are rounded up to the
 * next power of two and returned naturally aligned.
 */
class BuddyAllocator
{
  public:
    /**
     * @param capacity pool size in bytes (multiple of min_block)
     * @param min_block smallest allocatable block (default 4KB page)
     * @param max_block largest block / top-level chunk (default 32MB)
     */
    BuddyAllocator(u64 capacity, u64 min_block = 4 * KiB,
                   u64 max_block = 32 * MiB);

    /** Allocate a naturally aligned block of at least @p size bytes. */
    Result<PhysAddr> alloc(u64 size);

    /** Free a block previously returned by alloc() with the same size. */
    Status free(PhysAddr addr, u64 size);

    u64 capacity() const { return capacity_; }
    u64 allocatedBytes() const { return allocated_bytes_; }
    u64 freeBytes() const { return capacity_ - allocated_bytes_; }

    /** Largest block that could currently be allocated. */
    u64 largestFreeBlock() const;

    /** Number of free blocks at the order holding @p size blocks. */
    std::size_t freeBlocksOfSize(u64 size) const;

    u64 minBlock() const { return min_block_; }
    u64 maxBlock() const { return max_block_; }

    /** Internal consistency check (tests): free lists are disjoint,
     *  aligned, and account for exactly freeBytes(). */
    bool checkInvariants() const;

  private:
    unsigned orderFor(u64 size) const;
    u64 sizeOfOrder(unsigned order) const;

    u64 capacity_;
    u64 min_block_;
    u64 max_block_;
    unsigned num_orders_;
    u64 allocated_bytes_ = 0;
    /** free_lists_[k] holds start addresses of free blocks of
     *  size min_block << k. std::set gives O(log n) buddy lookup. */
    std::vector<std::set<PhysAddr>> free_lists_;
    /** Live allocations (addr -> order) for exact double-free and
     *  wrong-size detection even after buddies coalesce. */
    std::unordered_map<PhysAddr, unsigned> live_;
};

} // namespace vattn::gpu

#endif // VATTN_GPU_BUDDY_ALLOCATOR_HH
