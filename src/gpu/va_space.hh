/**
 * @file
 * Device virtual-address range allocator behind cuMemAddressReserve /
 * cuMemAddressFree. Virtual memory is deliberately plentiful (the paper
 * reserves terabytes, §5.1.3): the default space is 128TB per device.
 */

#ifndef VATTN_GPU_VA_SPACE_HH
#define VATTN_GPU_VA_SPACE_HH

#include <map>

#include "common/interval_map.hh"
#include "common/status.hh"
#include "common/types.hh"

namespace vattn::gpu
{

/** First-fit reservation allocator over a huge virtual range. */
class VaSpace
{
  public:
    /** Default base keeps VA 0 invalid (null-like) and distinctive. */
    static constexpr Addr kDefaultBase = 0x10'0000'0000ULL; // 64GB mark
    static constexpr u64 kDefaultSize = 128 * TiB;

    explicit VaSpace(Addr base = kDefaultBase, u64 size = kDefaultSize);

    /**
     * Reserve @p size bytes aligned to @p alignment. If @p fixed is
     * non-zero, reserve exactly at that address or fail.
     */
    Result<Addr> reserve(u64 size, u64 alignment, Addr fixed = 0);

    /** Release a reservation made at @p addr (must match exactly). */
    Status release(Addr addr);

    /** Size of the reservation starting at @p addr, 0 if none. */
    u64 reservationSize(Addr addr) const;

    /** Does [addr, addr+size) lie fully inside one reservation? */
    bool isReserved(Addr addr, u64 size) const;

    u64 reservedBytes() const { return reserved_.coveredBytes(); }
    std::size_t numReservations() const { return reserved_.size(); }
    Addr base() const { return base_; }
    u64 size() const { return size_; }

  private:
    Addr base_;
    u64 size_;
    /** reserved ranges; value is unused (bool). */
    IntervalMap<bool> reserved_;
    /** free ranges keyed by start -> length; kept coalesced. */
    std::map<Addr, u64> free_;

    void insertFree(Addr start, u64 len);
};

} // namespace vattn::gpu

#endif // VATTN_GPU_VA_SPACE_HH
