#include "gpu/va_space.hh"

#include "common/logging.hh"

namespace vattn::gpu
{

VaSpace::VaSpace(Addr base, u64 size)
    : base_(base), size_(size)
{
    fatal_if(size_ == 0, "VaSpace with zero size");
    fatal_if(base_ + size_ < base_, "VaSpace wraps the address space");
    free_.emplace(base_, size_);
}

void
VaSpace::insertFree(Addr start, u64 len)
{
    if (len == 0) {
        return;
    }
    auto it = free_.emplace(start, len).first;
    // Coalesce with successor.
    auto next = std::next(it);
    if (next != free_.end() && it->first + it->second == next->first) {
        it->second += next->second;
        free_.erase(next);
    }
    // Coalesce with predecessor.
    if (it != free_.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second == it->first) {
            prev->second += it->second;
            free_.erase(it);
        }
    }
}

Result<Addr>
VaSpace::reserve(u64 size, u64 alignment, Addr fixed)
{
    if (size == 0) {
        return Result<Addr>(ErrorCode::kInvalidArgument, "zero size");
    }
    if (alignment == 0) {
        alignment = 1;
    }
    if (!isPow2(alignment)) {
        return Result<Addr>(ErrorCode::kInvalidArgument,
                            "alignment must be a power of two");
    }

    if (fixed != 0) {
        if (fixed % alignment != 0) {
            return Result<Addr>(ErrorCode::kInvalidArgument,
                                "fixed address not aligned");
        }
        // Find the free range containing [fixed, fixed + size).
        auto it = free_.upper_bound(fixed);
        if (it == free_.begin()) {
            return Result<Addr>(ErrorCode::kOutOfMemory,
                                "fixed range unavailable");
        }
        --it;
        const Addr fstart = it->first;
        const u64 flen = it->second;
        if (fixed < fstart || fixed + size > fstart + flen) {
            return Result<Addr>(ErrorCode::kOutOfMemory,
                                "fixed range unavailable");
        }
        free_.erase(it);
        insertFree(fstart, fixed - fstart);
        insertFree(fixed + size, (fstart + flen) - (fixed + size));
        reserved_.insert(fixed, fixed + size, true)
            .expectOk("VaSpace bookkeeping");
        return fixed;
    }

    // First fit with alignment.
    for (auto it = free_.begin(); it != free_.end(); ++it) {
        const Addr fstart = it->first;
        const u64 flen = it->second;
        const Addr aligned = roundUp(fstart, alignment);
        if (aligned + size > fstart + flen || aligned < fstart) {
            continue;
        }
        free_.erase(it);
        insertFree(fstart, aligned - fstart);
        insertFree(aligned + size, (fstart + flen) - (aligned + size));
        reserved_.insert(aligned, aligned + size, true)
            .expectOk("VaSpace bookkeeping");
        return aligned;
    }
    return Result<Addr>(ErrorCode::kOutOfMemory, "virtual space exhausted");
}

Status
VaSpace::release(Addr addr)
{
    auto entry = reserved_.findExact(addr);
    if (!entry) {
        return errorStatus(ErrorCode::kNotFound,
                           "no reservation starts at this address");
    }
    reserved_.eraseAt(addr).expectOk("VaSpace erase");
    insertFree(entry->start, entry->end - entry->start);
    return Status::ok();
}

u64
VaSpace::reservationSize(Addr addr) const
{
    auto entry = reserved_.findExact(addr);
    return entry ? entry->end - entry->start : 0;
}

bool
VaSpace::isReserved(Addr addr, u64 size) const
{
    auto entry = reserved_.find(addr);
    if (!entry) {
        return false;
    }
    return addr + size <= entry->end;
}

} // namespace vattn::gpu
