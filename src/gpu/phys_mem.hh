/**
 * @file
 * Simulated GPU physical memory. Capacity is accounted exactly (80GB for
 * an A100) but host backing is committed lazily in small chunks on first
 * write, so experiments that only exercise allocation metadata cost
 * almost no host RAM while functional kernels still move real bytes.
 */

#ifndef VATTN_GPU_PHYS_MEM_HH
#define VATTN_GPU_PHYS_MEM_HH

#include <memory>
#include <unordered_map>

#include "common/types.hh"

namespace vattn::gpu
{

/** Byte-addressable device memory with sparse host backing. */
class PhysicalMemory
{
  public:
    explicit PhysicalMemory(u64 capacity);

    u64 capacity() const { return capacity_; }

    /** Copy @p size bytes at @p addr into @p buf; untouched = zeros. */
    void read(PhysAddr addr, void *buf, u64 size) const;

    /** Copy @p size bytes from @p buf to @p addr. */
    void write(PhysAddr addr, const void *buf, u64 size);

    /** Fill [addr, addr+size) with @p value. */
    void fill(PhysAddr addr, u8 value, u64 size);

    /** Host bytes actually committed for backing store. */
    u64 touchedBytes() const { return chunks_.size() * kChunkBytes; }

    /** Backing-store chunk granularity (host-side detail). */
    static constexpr u64 kChunkBytes = 64 * KiB;

  private:
    void checkRange(PhysAddr addr, u64 size) const;

    /** Backing chunk for index, or nullptr if never written. */
    const std::byte *chunkFor(u64 index) const;
    /** Backing chunk for index, created on demand. */
    std::byte *chunkForWrite(u64 index);

    u64 capacity_;
    std::unordered_map<u64, std::unique_ptr<std::byte[]>> chunks_;
};

} // namespace vattn::gpu

#endif // VATTN_GPU_PHYS_MEM_HH
