#include "gpu/phys_mem.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace vattn::gpu
{

PhysicalMemory::PhysicalMemory(u64 capacity)
    : capacity_(capacity)
{
    panic_if(capacity == 0, "PhysicalMemory with zero capacity");
}

void
PhysicalMemory::checkRange(PhysAddr addr, u64 size) const
{
    panic_if(addr + size < addr, "physical range wraps");
    panic_if(addr + size > capacity_,
             "physical access [", addr, ", ", addr + size,
             ") beyond capacity ", capacity_);
}

const std::byte *
PhysicalMemory::chunkFor(u64 index) const
{
    auto it = chunks_.find(index);
    return it == chunks_.end() ? nullptr : it->second.get();
}

std::byte *
PhysicalMemory::chunkForWrite(u64 index)
{
    auto it = chunks_.find(index);
    if (it == chunks_.end()) {
        auto chunk = std::make_unique<std::byte[]>(kChunkBytes);
        std::memset(chunk.get(), 0, kChunkBytes);
        it = chunks_.emplace(index, std::move(chunk)).first;
    }
    return it->second.get();
}

void
PhysicalMemory::read(PhysAddr addr, void *buf, u64 size) const
{
    checkRange(addr, size);
    auto *out = static_cast<std::byte *>(buf);
    while (size > 0) {
        const u64 index = addr / kChunkBytes;
        const u64 offset = addr % kChunkBytes;
        const u64 take = std::min(size, kChunkBytes - offset);
        if (const std::byte *chunk = chunkFor(index)) {
            std::memcpy(out, chunk + offset, take);
        } else {
            std::memset(out, 0, take);
        }
        out += take;
        addr += take;
        size -= take;
    }
}

void
PhysicalMemory::write(PhysAddr addr, const void *buf, u64 size)
{
    checkRange(addr, size);
    const auto *in = static_cast<const std::byte *>(buf);
    while (size > 0) {
        const u64 index = addr / kChunkBytes;
        const u64 offset = addr % kChunkBytes;
        const u64 take = std::min(size, kChunkBytes - offset);
        std::memcpy(chunkForWrite(index) + offset, in, take);
        in += take;
        addr += take;
        size -= take;
    }
}

void
PhysicalMemory::fill(PhysAddr addr, u8 value, u64 size)
{
    checkRange(addr, size);
    while (size > 0) {
        const u64 index = addr / kChunkBytes;
        const u64 offset = addr % kChunkBytes;
        const u64 take = std::min(size, kChunkBytes - offset);
        std::memset(chunkForWrite(index) + offset, value, take);
        addr += take;
        size -= take;
    }
}

} // namespace vattn::gpu
