/**
 * @file
 * Two-level set-associative TLB model. Used for the §7.6.3 question:
 * does backing the KV cache with 64KB pages (instead of 2MB) cause TLB
 * thrashing during attention? Kernel accessors replay their page-touch
 * traces through this model; the kernel latency model converts misses
 * into a (tiny) time penalty. Entries are tagged with the page size, as
 * GPU MMUs hold separate entries per page size class.
 */

#ifndef VATTN_GPU_TLB_HH
#define VATTN_GPU_TLB_HH

#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace vattn::gpu
{

/** Hit/miss counters for one TLB level. */
struct TlbStats
{
    u64 hits = 0;
    u64 misses = 0;

    u64 accesses() const { return hits + misses; }
    double
    missRate() const
    {
        const u64 n = accesses();
        return n ? static_cast<double>(misses) / static_cast<double>(n)
                 : 0.0;
    }

    void
    reset()
    {
        hits = 0;
        misses = 0;
    }
};

/** One set-associative TLB level with true-LRU replacement per set. */
class TlbLevel
{
  public:
    TlbLevel(unsigned num_entries, unsigned associativity);

    /** Look up; fills on miss. Returns true on hit. */
    bool access(Addr vpn_key);

    void flush();
    const TlbStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }
    unsigned numEntries() const { return num_entries_; }

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        u64 lru = 0; ///< last-use stamp
    };

    unsigned num_entries_;
    unsigned assoc_;
    unsigned num_sets_;
    u64 tick_ = 0;
    std::vector<Way> ways_; ///< num_sets_ * assoc_
    TlbStats stats_;
};

/**
 * GPU MMU TLB hierarchy: a small per-SM-style L1 and a larger shared L2,
 * with independent entry arrays per page size class. Defaults follow
 * published reverse-engineering of NVIDIA TLBs (L1 ~64 entries, L2 ~1K,
 * 16-way); exact sizes only matter relatively for the 2MB-vs-64KB
 * comparison.
 */
class Tlb
{
  public:
    struct Config
    {
        unsigned l1_entries = 64;
        unsigned l1_assoc = 8;
        unsigned l2_entries = 1024;
        unsigned l2_assoc = 16;
    };

    Tlb();
    explicit Tlb(Config config);

    /**
     * Access the translation for @p va backed by a page of size
     * @p page. Returns the level that hit: 1, 2, or 0 for full miss
     * (page walk).
     */
    int access(Addr va, PageSize page);

    const TlbStats &l1Stats(PageSize page) const;
    const TlbStats &l2Stats(PageSize page) const;

    /** Aggregate full misses (page walks) across page sizes. */
    u64 pageWalks() const { return page_walks_; }

    void flush();
    void resetStats();

  private:
    struct SizeClass
    {
        TlbLevel l1;
        TlbLevel l2;
    };

    SizeClass &classFor(PageSize page);
    const SizeClass &classFor(PageSize page) const;

    SizeClass c4k_;
    SizeClass c64k_;
    SizeClass c2m_;
    u64 page_walks_ = 0;
};

} // namespace vattn::gpu

#endif // VATTN_GPU_TLB_HH
