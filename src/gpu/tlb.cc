#include "gpu/tlb.hh"

#include "common/logging.hh"

namespace vattn::gpu
{

TlbLevel::TlbLevel(unsigned num_entries, unsigned associativity)
    : num_entries_(num_entries), assoc_(associativity),
      num_sets_(num_entries / associativity),
      ways_(num_entries)
{
    panic_if(num_entries_ == 0 || assoc_ == 0,
             "TLB level with zero entries/assoc");
    panic_if(num_entries_ % assoc_ != 0,
             "TLB entries must be a multiple of associativity");
    panic_if(!isPow2(num_sets_), "TLB set count must be a power of two");
}

bool
TlbLevel::access(Addr vpn_key)
{
    ++tick_;
    const unsigned set =
        static_cast<unsigned>(vpn_key & (num_sets_ - 1));
    Way *base = &ways_[static_cast<std::size_t>(set) * assoc_];

    Way *victim = base;
    for (unsigned w = 0; w < assoc_; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == vpn_key) {
            way.lru = tick_;
            ++stats_.hits;
            return true;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lru < victim->lru) {
            victim = &way;
        }
    }
    ++stats_.misses;
    victim->tag = vpn_key;
    victim->valid = true;
    victim->lru = tick_;
    return false;
}

void
TlbLevel::flush()
{
    for (Way &way : ways_) {
        way.valid = false;
    }
}

Tlb::Tlb() : Tlb(Config{}) {}

Tlb::Tlb(Config config)
    : c4k_{TlbLevel(config.l1_entries, config.l1_assoc),
           TlbLevel(config.l2_entries, config.l2_assoc)},
      c64k_{TlbLevel(config.l1_entries, config.l1_assoc),
            TlbLevel(config.l2_entries, config.l2_assoc)},
      c2m_{TlbLevel(config.l1_entries, config.l1_assoc),
           TlbLevel(config.l2_entries, config.l2_assoc)}
{
}

Tlb::SizeClass &
Tlb::classFor(PageSize page)
{
    switch (page) {
      case PageSize::k4KB: return c4k_;
      case PageSize::k64KB: return c64k_;
      case PageSize::k2MB: return c2m_;
    }
    panic("unknown page size");
}

const Tlb::SizeClass &
Tlb::classFor(PageSize page) const
{
    return const_cast<Tlb *>(this)->classFor(page);
}

int
Tlb::access(Addr va, PageSize page)
{
    SizeClass &sc = classFor(page);
    const Addr vpn = va / bytes(page);
    if (sc.l1.access(vpn)) {
        return 1;
    }
    if (sc.l2.access(vpn)) {
        return 2;
    }
    ++page_walks_;
    return 0;
}

const TlbStats &
Tlb::l1Stats(PageSize page) const
{
    return classFor(page).l1.stats();
}

const TlbStats &
Tlb::l2Stats(PageSize page) const
{
    return classFor(page).l2.stats();
}

void
Tlb::flush()
{
    c4k_.l1.flush();
    c4k_.l2.flush();
    c64k_.l1.flush();
    c64k_.l2.flush();
    c2m_.l1.flush();
    c2m_.l2.flush();
}

void
Tlb::resetStats()
{
    c4k_.l1.resetStats();
    c4k_.l2.resetStats();
    c64k_.l1.resetStats();
    c64k_.l2.resetStats();
    c2m_.l1.resetStats();
    c2m_.l2.resetStats();
    page_walks_ = 0;
}

} // namespace vattn::gpu
