#include "gpu/page_table.hh"

#include "common/logging.hh"

namespace vattn::gpu
{

Status
PageTable::map(Addr va, PhysAddr pa, u64 size, PageSize page,
               Access access)
{
    const u64 psize = bytes(page);
    if (size == 0 || size % psize != 0) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "size not a multiple of the page size");
    }
    if (va % psize != 0 || pa % psize != 0) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "addresses not page aligned");
    }
    return map_.insert(va, va + size, Extent{pa, page, access});
}

bool
PageTable::coversWholeExtents(Addr va, u64 size) const
{
    Addr cursor = va;
    bool bad = false;
    map_.forEachIn(va, va + size, [&](const auto &e) {
        if (bad) {
            return;
        }
        if (e.start != cursor || e.end > va + size) {
            bad = true; // gap or extent crossing the range boundary
            return;
        }
        cursor = e.end;
    });
    return !bad && cursor == va + size;
}

Status
PageTable::setAccess(Addr va, u64 size, Access access)
{
    if (size == 0) {
        return errorStatus(ErrorCode::kInvalidArgument, "zero size");
    }
    // Verify the range decomposes into whole extents first (no partial
    // side effects on failure, and access never leaks outside [va, size)).
    if (!coversWholeExtents(va, size)) {
        return errorStatus(ErrorCode::kFailedPrecondition,
                           "range not fully mapped as whole extents");
    }
    // Validated: the extents tile [va, va + size) exactly, so each
    // one starts where the previous ended.
    for (Addr cursor = va; cursor < va + size;) {
        const auto entry = map_.findExact(cursor);
        panic_if(!entry, "extent vanished during setAccess");
        Extent *extent = map_.findValue(cursor);
        extent->access = access;
        cursor = entry->end;
    }
    return Status::ok();
}

Status
PageTable::unmap(Addr va, u64 size)
{
    if (size == 0) {
        return errorStatus(ErrorCode::kInvalidArgument, "zero size");
    }
    // The range must decompose into whole extents with no gaps and no
    // partial overlap at either boundary.
    if (!coversWholeExtents(va, size)) {
        return errorStatus(ErrorCode::kFailedPrecondition,
                           "range does not match mapped extents");
    }
    for (Addr cursor = va; cursor < va + size;) {
        const auto entry = map_.findExact(cursor);
        panic_if(!entry, "extent vanished during unmap");
        map_.eraseAt(cursor).expectOk("page table erase");
        cursor = entry->end;
    }
    return Status::ok();
}

Result<Translation>
PageTable::translate(Addr va) const
{
    auto entry = map_.find(va);
    if (!entry) {
        return Result<Translation>(ErrorCode::kNotFound,
                                   "address not mapped");
    }
    const Extent &extent = entry->value;
    return Translation{
        extent.phys + (va - entry->start),
        entry->start,
        entry->end,
        extent.page,
        extent.access,
    };
}

bool
PageTable::isAccessible(Addr va, u64 size) const
{
    Addr cursor = va;
    bool ok = true;
    map_.forEachIn(va, va + size, [&](const auto &e) {
        if (!ok) {
            return;
        }
        if (e.start > cursor || e.value.access != Access::kReadWrite) {
            ok = false;
            return;
        }
        cursor = e.end;
    });
    return ok && cursor >= va + size;
}

} // namespace vattn::gpu
