#include "cuvmm/driver.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vattn::cuvmm
{

const char *
toString(CuResult result)
{
    switch (result) {
      case CuResult::kSuccess: return "CUDA_SUCCESS";
      case CuResult::kErrorInvalidValue: return "CUDA_ERROR_INVALID_VALUE";
      case CuResult::kErrorOutOfMemory: return "CUDA_ERROR_OUT_OF_MEMORY";
      case CuResult::kErrorNotMapped: return "CUDA_ERROR_NOT_MAPPED";
      case CuResult::kErrorAlreadyMapped:
        return "CUDA_ERROR_ALREADY_MAPPED";
      case CuResult::kErrorNotReserved: return "CUDA_ERROR_NOT_RESERVED";
      case CuResult::kErrorInvalidHandle:
        return "CUDA_ERROR_INVALID_HANDLE";
    }
    return "?";
}

namespace
{

/** Hardware page size used to back a page-group of the given size. */
PageSize
pageFor(u64 group_bytes)
{
    if (group_bytes % bytes(PageSize::k2MB) == 0) {
        return PageSize::k2MB;
    }
    if (group_bytes % bytes(PageSize::k64KB) == 0) {
        return PageSize::k64KB;
    }
    return PageSize::k4KB;
}

/** PageGroup bucket used for latency charging of arbitrary sizes. */
PageGroup
latencyBucket(u64 size)
{
    if (size <= 64 * KiB) {
        return PageGroup::k64KB;
    }
    if (size <= 128 * KiB) {
        return PageGroup::k128KB;
    }
    if (size <= 256 * KiB) {
        return PageGroup::k256KB;
    }
    return PageGroup::k2MB;
}

} // namespace

Driver::Driver(gpu::GpuDevice &device, LatencyModel latency)
    : device_(device), latency_(latency)
{
}

void
Driver::charge(Api api, PageGroup pg)
{
    const TimeNs cost = latency_.cost(api, pg);
    pending_ns_ += cost;
    total_ns_ += cost;
    switch (api) {
      case Api::kAddressReserve: ++counters_.reserve; break;
      case Api::kCreate: ++counters_.create; break;
      case Api::kMap: ++counters_.map; break;
      case Api::kSetAccess: ++counters_.set_access; break;
      case Api::kUnmap: ++counters_.unmap; break;
      case Api::kRelease: ++counters_.release; break;
      case Api::kAddressFree: ++counters_.address_free; break;
    }
}

void
Driver::chargeNs(TimeNs cost)
{
    pending_ns_ += cost;
    total_ns_ += cost;
}

TimeNs
Driver::consumeElapsedNs()
{
    const TimeNs t = pending_ns_;
    pending_ns_ = 0;
    return t;
}

// --------------------------------------------------------------------
// Stock CUDA VMM API
// --------------------------------------------------------------------

CuResult
Driver::cuMemAddressReserve(Addr *ptr, u64 size, u64 alignment, Addr fixed)
{
    charge(Api::kAddressReserve, PageGroup::k2MB);
    if (!ptr || size == 0 || size % bytes(PageSize::k2MB) != 0) {
        return CuResult::kErrorInvalidValue;
    }
    if (alignment == 0) {
        alignment = bytes(PageSize::k2MB);
    }
    auto res = device_.vaSpace().reserve(size, alignment, fixed);
    if (!res.isOk()) {
        return res.code() == ErrorCode::kInvalidArgument
                   ? CuResult::kErrorInvalidValue
                   : CuResult::kErrorOutOfMemory;
    }
    *ptr = res.value();
    return CuResult::kSuccess;
}

CuResult
Driver::cuMemAddressFree(Addr ptr, u64 size)
{
    charge(Api::kAddressFree, PageGroup::k2MB);
    if (device_.vaSpace().reservationSize(ptr) != size) {
        return CuResult::kErrorInvalidValue;
    }
    // CUDA requires all mappings in the range to be gone.
    if (device_.pageTable().numExtents() > 0) {
        bool any = false;
        device_.pageTable().forEachExtent(ptr, size,
            [&](Addr, Addr, PhysAddr, PageSize, gpu::Access) {
                any = true;
            });
        if (any) {
            return CuResult::kErrorAlreadyMapped;
        }
    }
    auto status = device_.vaSpace().release(ptr);
    return status.isOk() ? CuResult::kSuccess
                         : CuResult::kErrorInvalidValue;
}

CuResult
Driver::cuMemCreate(MemHandle *handle, u64 size)
{
    charge(Api::kCreate, PageGroup::k2MB);
    if (!handle || size == 0 || size % bytes(PageSize::k2MB) != 0) {
        return CuResult::kErrorInvalidValue;
    }
    auto phys = device_.physAllocator().alloc(size);
    if (!phys.isOk()) {
        return CuResult::kErrorOutOfMemory;
    }
    const MemHandle h = next_handle_++;
    handles_[h] =
        HandleInfo{size, phys.value(), PageSize::k2MB, {}, false};
    phys_in_use_ += size;
    *handle = h;
    return CuResult::kSuccess;
}

CuResult
Driver::cuMemRelease(MemHandle handle)
{
    charge(Api::kRelease, PageGroup::k2MB);
    auto it = handles_.find(handle);
    if (it == handles_.end()) {
        return CuResult::kErrorInvalidHandle;
    }
    if (!it->second.mappings.empty()) {
        // CUDA defers the actual free until unmap; we require the
        // caller to unmap first, which is what vAttention does.
        return CuResult::kErrorAlreadyMapped;
    }
    device_.physAllocator().free(it->second.phys, it->second.size)
        .expectOk("buddy free on release");
    phys_in_use_ -= it->second.size;
    handles_.erase(it);
    return CuResult::kSuccess;
}

CuResult
Driver::doMap(Addr ptr, MemHandle handle, gpu::Access access)
{
    auto it = handles_.find(handle);
    if (it == handles_.end()) {
        return CuResult::kErrorInvalidHandle;
    }
    HandleInfo &info = it->second;
    if (!device_.vaSpace().isReserved(ptr, info.size)) {
        return CuResult::kErrorNotReserved;
    }
    // A handle may be mapped at several VAs simultaneously (physical
    // aliasing) — the mechanism behind KV prefix de-duplication.
    auto status = device_.pageTable().map(ptr, info.phys, info.size,
                                          info.page, access);
    if (!status.isOk()) {
        return status.code() == ErrorCode::kAlreadyExists
                   ? CuResult::kErrorAlreadyMapped
                   : CuResult::kErrorInvalidValue;
    }
    info.mappings.push_back(ptr);
    mapped_[ptr] = handle;
    return CuResult::kSuccess;
}

CuResult
Driver::cuMemMap(Addr ptr, u64 size, u64 offset, MemHandle handle)
{
    charge(Api::kMap, PageGroup::k2MB);
    if (offset != 0) {
        return CuResult::kErrorInvalidValue; // matches current CUDA
    }
    auto it = handles_.find(handle);
    if (it == handles_.end()) {
        return CuResult::kErrorInvalidHandle;
    }
    if (size != it->second.size) {
        return CuResult::kErrorInvalidValue;
    }
    return doMap(ptr, handle, gpu::Access::kNone);
}

CuResult
Driver::cuMemSetAccess(Addr ptr, u64 size)
{
    charge(Api::kSetAccess, PageGroup::k2MB);
    auto status =
        device_.pageTable().setAccess(ptr, size, gpu::Access::kReadWrite);
    return status.isOk() ? CuResult::kSuccess : CuResult::kErrorNotMapped;
}

CuResult
Driver::doUnmapOne(HandleInfo &info, Addr ptr)
{
    auto status = device_.pageTable().unmap(ptr, info.size);
    if (!status.isOk()) {
        return CuResult::kErrorNotMapped;
    }
    mapped_.erase(ptr);
    info.mappings.erase(
        std::find(info.mappings.begin(), info.mappings.end(), ptr));
    return CuResult::kSuccess;
}

CuResult
Driver::cuMemUnmap(Addr ptr, u64 size)
{
    charge(Api::kUnmap, PageGroup::k2MB);
    auto it = mapped_.find(ptr);
    if (it == mapped_.end()) {
        return CuResult::kErrorNotMapped;
    }
    HandleInfo &info = handles_.at(it->second);
    if (info.size != size) {
        return CuResult::kErrorInvalidValue;
    }
    return doUnmapOne(info, ptr);
}

// --------------------------------------------------------------------
// cudaMalloc / cudaFree
// --------------------------------------------------------------------

CuResult
Driver::cudaMalloc(Addr *ptr, u64 size)
{
    if (!ptr || size == 0) {
        return CuResult::kErrorInvalidValue;
    }
    // cudaMalloc commits virtual + physical together (the
    // reservation-based model the paper contrasts with, §1).
    const u64 padded = roundUp(size, bytes(PageSize::k2MB));
    Addr va = 0;
    CuResult r = cuMemAddressReserve(&va, padded);
    if (r != CuResult::kSuccess) {
        return r;
    }
    MemHandle h = kInvalidHandle;
    r = cuMemCreate(&h, padded);
    if (r != CuResult::kSuccess) {
        cuMemAddressFree(va, padded);
        return r;
    }
    r = cuMemMap(va, padded, 0, h);
    if (r == CuResult::kSuccess) {
        r = cuMemSetAccess(va, padded);
    }
    if (r != CuResult::kSuccess) {
        cuMemRelease(h);
        cuMemAddressFree(va, padded);
        return r;
    }
    mallocs_[va] = MallocInfo{padded, h};
    *ptr = va;
    return CuResult::kSuccess;
}

CuResult
Driver::cudaFree(Addr ptr)
{
    auto it = mallocs_.find(ptr);
    if (it == mallocs_.end()) {
        return CuResult::kErrorInvalidValue;
    }
    const MallocInfo info = it->second;
    mallocs_.erase(it);
    CuResult r = cuMemUnmap(ptr, info.size);
    if (r != CuResult::kSuccess) {
        return r;
    }
    r = cuMemRelease(info.handle);
    if (r != CuResult::kSuccess) {
        return r;
    }
    return cuMemAddressFree(ptr, info.size);
}

// --------------------------------------------------------------------
// Host memory + PCIe copies (KV swap tier)
// --------------------------------------------------------------------

CuResult
Driver::cuMemHostCreate(MemHandle *handle, u64 size)
{
    chargeNs(latency_.hostAllocCost(size));
    ++counters_.host_create;
    if (!handle || size == 0) {
        return CuResult::kErrorInvalidValue;
    }
    const MemHandle h = next_handle_++;
    host_handles_[h] = size;
    host_in_use_ += size;
    *handle = h;
    return CuResult::kSuccess;
}

CuResult
Driver::cuMemHostRelease(MemHandle handle)
{
    auto it = host_handles_.find(handle);
    if (it == host_handles_.end()) {
        chargeNs(latency_.hostFreeCost(0));
        ++counters_.host_release;
        return CuResult::kErrorInvalidHandle;
    }
    chargeNs(latency_.hostFreeCost(it->second));
    ++counters_.host_release;
    host_in_use_ -= it->second;
    host_handles_.erase(it);
    return CuResult::kSuccess;
}

CuResult
Driver::cuMemcpyDtoH(MemHandle host, MemHandle device)
{
    ++counters_.copy_dtoh;
    auto hit = host_handles_.find(host);
    auto dit = handles_.find(device);
    if (hit == host_handles_.end() || dit == handles_.end()) {
        return CuResult::kErrorInvalidHandle;
    }
    if (hit->second != dit->second.size) {
        return CuResult::kErrorInvalidValue;
    }
    chargeNs(latency_.copyDtoHCost(dit->second.size));
    return CuResult::kSuccess;
}

CuResult
Driver::cuMemcpyHtoD(MemHandle device, MemHandle host)
{
    ++counters_.copy_htod;
    auto hit = host_handles_.find(host);
    auto dit = handles_.find(device);
    if (hit == host_handles_.end() || dit == handles_.end()) {
        return CuResult::kErrorInvalidHandle;
    }
    if (hit->second != dit->second.size) {
        return CuResult::kErrorInvalidValue;
    }
    chargeNs(latency_.copyHtoDCost(dit->second.size));
    return CuResult::kSuccess;
}

// --------------------------------------------------------------------
// Driver extension (vMem*)
// --------------------------------------------------------------------

CuResult
Driver::vMemReserve(Addr *ptr, u64 size, u64 alignment)
{
    if (!ptr || size == 0 || size % bytes(PageSize::k64KB) != 0) {
        charge(Api::kAddressReserve, PageGroup::k64KB);
        return CuResult::kErrorInvalidValue;
    }
    charge(Api::kAddressReserve, latencyBucket(size));
    if (alignment == 0) {
        alignment = bytes(PageSize::k64KB);
    }
    auto res = device_.vaSpace().reserve(size, alignment);
    if (!res.isOk()) {
        return CuResult::kErrorOutOfMemory;
    }
    *ptr = res.value();
    return CuResult::kSuccess;
}

CuResult
Driver::vMemFree(Addr ptr, u64 size)
{
    charge(Api::kAddressFree, latencyBucket(size));
    if (device_.vaSpace().reservationSize(ptr) != size) {
        return CuResult::kErrorInvalidValue;
    }
    bool any = false;
    device_.pageTable().forEachExtent(ptr, size,
        [&](Addr, Addr, PhysAddr, PageSize, gpu::Access) { any = true; });
    if (any) {
        return CuResult::kErrorAlreadyMapped;
    }
    return device_.vaSpace().release(ptr).isOk()
               ? CuResult::kSuccess
               : CuResult::kErrorInvalidValue;
}

CuResult
Driver::vMemCreate(MemHandle *handle, PageGroup group)
{
    charge(Api::kCreate, group);
    if (!handle) {
        return CuResult::kErrorInvalidValue;
    }
    const u64 size = bytes(group);
    auto phys = device_.physAllocator().alloc(size);
    if (!phys.isOk()) {
        return CuResult::kErrorOutOfMemory;
    }
    const MemHandle h = next_handle_++;
    handles_[h] =
        HandleInfo{size, phys.value(), pageFor(size), {}, true};
    phys_in_use_ += size;
    *handle = h;
    return CuResult::kSuccess;
}

CuResult
Driver::vMemMap(Addr ptr, MemHandle handle)
{
    auto it = handles_.find(handle);
    if (it == handles_.end()) {
        charge(Api::kMap, PageGroup::k64KB);
        return CuResult::kErrorInvalidHandle;
    }
    charge(Api::kMap, latencyBucket(it->second.size));
    // vMemMap = cuMemMap + cuMemSetAccess in one kernel crossing.
    return doMap(ptr, handle, gpu::Access::kReadWrite);
}

CuResult
Driver::vMemUnmap(Addr ptr)
{
    auto it = mapped_.find(ptr);
    if (it == mapped_.end()) {
        charge(Api::kUnmap, PageGroup::k64KB);
        return CuResult::kErrorNotMapped;
    }
    HandleInfo &info = handles_.at(it->second);
    charge(Api::kUnmap, latencyBucket(info.size));
    // Only this VA's mapping goes away; aliased mappings (and the
    // physical memory) survive until vMemRelease.
    return doUnmapOne(info, ptr);
}

CuResult
Driver::vMemRelease(MemHandle handle)
{
    auto it = handles_.find(handle);
    if (it == handles_.end()) {
        charge(Api::kRelease, PageGroup::k64KB);
        return CuResult::kErrorInvalidHandle;
    }
    charge(Api::kRelease, latencyBucket(it->second.size));
    HandleInfo &info = it->second;
    while (!info.mappings.empty()) {
        const CuResult r = doUnmapOne(info, info.mappings.back());
        if (r != CuResult::kSuccess) {
            return r;
        }
    }
    device_.physAllocator().free(info.phys, info.size)
        .expectOk("buddy free on vMemRelease");
    phys_in_use_ -= info.size;
    handles_.erase(it);
    return CuResult::kSuccess;
}

// --------------------------------------------------------------------
// Introspection
// --------------------------------------------------------------------

void
Driver::auditInto(audit::AuditReport &report) const
{
    // Ledger conservation: the incremental phys/host byte counters
    // must equal what the handle tables actually hold.
    u64 live_bytes = 0;
    std::size_t total_mappings = 0;
    for (const auto &[handle, info] : handles_) {
        live_bytes += info.size;
        total_mappings += info.mappings.size();
        for (const Addr va : info.mappings) {
            const auto it = mapped_.find(va);
            if (it == mapped_.end()) {
                report.fail("driver: handle ", handle, " lists VA 0x",
                            std::hex, va, std::dec,
                            " but the VA->handle map has no entry");
            } else if (it->second != handle) {
                report.fail("driver: VA 0x", std::hex, va,
                            " maps handle ", std::dec, it->second,
                            " but handle ", handle,
                            " also claims that VA");
            }
        }
    }
    report.check(phys_in_use_ == live_bytes,
                 "driver: physBytesInUse ledger is ", phys_in_use_,
                 " but live handles sum to ", live_bytes,
                 " bytes (a create/release bypassed the ledger)");
    report.check(total_mappings == mapped_.size(),
                 "driver: handles list ", total_mappings,
                 " mappings but the VA->handle map has ",
                 mapped_.size(), " entries");
    for (const auto &[va, handle] : mapped_) {
        if (handles_.find(handle) == handles_.end()) {
            report.fail("driver: VA 0x", std::hex, va, std::dec,
                        " maps released handle ", handle);
        }
    }
    u64 host_bytes = 0;
    for (const auto &[handle, size] : host_handles_) {
        (void)handle;
        host_bytes += size;
    }
    report.check(host_in_use_ == host_bytes,
                 "driver: hostBytesInUse ledger is ", host_in_use_,
                 " but live host handles sum to ", host_bytes,
                 " bytes");
    for (const auto &[va, info] : mallocs_) {
        if (handles_.find(info.handle) == handles_.end()) {
            report.fail("driver: cudaMalloc at VA 0x", std::hex, va,
                        std::dec, " backed by released handle ",
                        info.handle);
        }
    }
}

u64
Driver::handleSize(MemHandle handle) const
{
    auto it = handles_.find(handle);
    return it == handles_.end() ? 0 : it->second.size;
}

bool
Driver::isMapped(MemHandle handle) const
{
    auto it = handles_.find(handle);
    return it != handles_.end() && !it->second.mappings.empty();
}

std::size_t
Driver::numMappings(MemHandle handle) const
{
    auto it = handles_.find(handle);
    return it == handles_.end() ? 0 : it->second.mappings.size();
}

} // namespace vattn::cuvmm
