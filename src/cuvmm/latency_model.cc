#include "cuvmm/latency_model.hh"

#include "common/logging.hh"

namespace vattn::cuvmm
{

const char *
toString(Api api)
{
    switch (api) {
      case Api::kAddressReserve: return "MemAddressReserve";
      case Api::kCreate: return "MemCreate";
      case Api::kMap: return "MemMap";
      case Api::kSetAccess: return "MemSetAccess";
      case Api::kUnmap: return "MemUnmap";
      case Api::kRelease: return "MemRelease";
      case Api::kAddressFree: return "MemAddressFree";
    }
    return "?";
}

namespace
{

/** Column index for a page-group size. */
int
column(PageGroup pg)
{
    switch (pg) {
      case PageGroup::k64KB: return 0;
      case PageGroup::k128KB: return 1;
      case PageGroup::k256KB: return 2;
      case PageGroup::k2MB: return 3;
    }
    panic("unknown page group");
}

// Table 3 of the paper, microseconds: {64KB, 128KB, 256KB, 2MB}.
// The 64-256KB columns are the vMem* extension APIs; the 2MB column is
// the stock CUDA path. -1 marks combinations that have no distinct
// call (fused into another API on that path).
//
// The sub-2MB kUnmap entries model the standalone vMemUnmap added for
// prefix sharing (drop ONE alias of a multi-mapped handle without
// freeing it): the same kernel crossing as vMemRelease minus the
// physical free, so slightly under the release column.
constexpr double kUsTable[][4] = {
    /* kAddressReserve */ {18.0, 17.0, 16.0, 2.0},
    /* kCreate         */ {1.7, 2.0, 2.1, 29.0},
    /* kMap            */ {8.0, 8.5, 9.0, 2.0},
    /* kSetAccess      */ {-1.0, -1.0, -1.0, 38.0},
    /* kUnmap          */ {1.8, 2.7, 3.6, 34.0},
    /* kRelease        */ {2.0, 3.0, 4.0, 23.0},
    /* kAddressFree    */ {35.0, 35.0, 35.0, 1.0},
};

} // namespace

TimeNs
LatencyModel::cost(Api api, PageGroup pg) const
{
    const double us = kUsTable[static_cast<int>(api)][column(pg)];
    panic_if(us < 0, "API ", toString(api),
             " has no distinct cost at page-group ", toString(pg),
             " (fused on this path)");
    return static_cast<TimeNs>(us * 1000.0 * scale_);
}

TimeNs
LatencyModel::mapGroupCost(PageGroup pg) const
{
    if (pg == PageGroup::k2MB) {
        return cost(Api::kMap, pg) + cost(Api::kSetAccess, pg);
    }
    return cost(Api::kMap, pg); // vMemMap fuses the access grant
}

namespace
{

TimeNs
bandwidthNs(u64 bytes, double bytes_per_s, TimeNs launch_ns)
{
    return launch_ns +
           static_cast<TimeNs>(static_cast<double>(bytes) /
                               bytes_per_s * 1e9);
}

} // namespace

TimeNs
LatencyModel::copyDtoHCost(u64 bytes) const
{
    // PCIe time is physical, not a driver-call cost: the Table-3
    // sensitivity scale does not apply.
    return bandwidthNs(bytes, copy_.d2h_bytes_per_s, copy_.launch_ns);
}

TimeNs
LatencyModel::copyHtoDCost(u64 bytes) const
{
    return bandwidthNs(bytes, copy_.h2d_bytes_per_s, copy_.launch_ns);
}

TimeNs
LatencyModel::hostAllocCost(u64 bytes) const
{
    // ~0.35us per 4KB page locked plus a fixed syscall/driver cost.
    const u64 pages = ceilDiv(bytes, 4 * KiB);
    return static_cast<TimeNs>((30.0 + 0.35 * static_cast<double>(pages)) *
                               1000.0 * scale_);
}

TimeNs
LatencyModel::hostFreeCost(u64 bytes) const
{
    const u64 pages = ceilDiv(bytes, 4 * KiB);
    return static_cast<TimeNs>((20.0 + 0.20 * static_cast<double>(pages)) *
                               1000.0 * scale_);
}

TimeNs
LatencyModel::unmapGroupCost(PageGroup pg) const
{
    if (pg == PageGroup::k2MB) {
        return cost(Api::kUnmap, pg) + cost(Api::kRelease, pg);
    }
    return cost(Api::kRelease, pg); // vMemRelease fuses the unmap
}

} // namespace vattn::cuvmm
