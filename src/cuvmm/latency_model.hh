/**
 * @file
 * Calibrated latency model for the VMM driver calls, reproducing Table 3
 * of the paper: per-API, per-page-group-size costs measured on an A100
 * system. Stock CUDA APIs (cu*) only operate at 2MB granularity; the
 * driver-extension APIs (v*) support 64KB/128KB/256KB and fuse
 * map+set-access and unmap+release.
 */

#ifndef VATTN_CUVMM_LATENCY_MODEL_HH
#define VATTN_CUVMM_LATENCY_MODEL_HH

#include "common/types.hh"

namespace vattn::cuvmm
{

/** The driver entry points that carry a modelled cost. */
enum class Api
{
    kAddressReserve, ///< cuMemAddressReserve / vMemReserve
    kCreate,         ///< cuMemCreate / vMemCreate
    kMap,            ///< cuMemMap / vMemMap (v: includes access grant)
    kSetAccess,      ///< cuMemSetAccess (2MB path only)
    kUnmap,          ///< cuMemUnmap (2MB path only)
    kRelease,        ///< cuMemRelease / vMemRelease (v: includes unmap)
    kAddressFree,    ///< cuMemAddressFree / vMemFree
};

const char *toString(Api api);

/** Table-3 cost model. All values in nanoseconds. */
class LatencyModel
{
  public:
    /**
     * Device<->host copy pricing for the KV swap tier. The defaults
     * mirror perf::PcieSpec::gen4x16() (the A100 platform) so a bare
     * driver prices copies sensibly; backends install the engine's
     * configured link via setCopyModel(PcieSpec::toCopyModel()).
     */
    struct CopyModel
    {
        double d2h_bytes_per_s = 24e9;
        double h2d_bytes_per_s = 26e9;
        TimeNs launch_ns = 8 * kUsec;
    };

    /** Latency of @p api when operating on @p pg sized page-groups. */
    TimeNs cost(Api api, PageGroup pg) const;

    // ---- Host tier (swap) costs -------------------------------------

    /** Device -> pinned-host copy of @p bytes (swap-out direction). */
    TimeNs copyDtoHCost(u64 bytes) const;

    /** Pinned-host -> device copy of @p bytes (swap-in direction). */
    TimeNs copyHtoDCost(u64 bytes) const;

    /**
     * cuMemHostCreate: pinned host allocation. Dominated by
     * page-locking, so roughly linear in size; callers are expected to
     * pool host pages rather than pay this per swap.
     */
    TimeNs hostAllocCost(u64 bytes) const;

    /** cuMemHostRelease: unpin + free. */
    TimeNs hostFreeCost(u64 bytes) const;

    void setCopyModel(const CopyModel &copy) { copy_ = copy; }
    const CopyModel &copyModel() const { return copy_; }

    /**
     * Steady-state cost of growing a mapped region by one page-group
     * (handles recycled from a pool, so only the mapping step pays):
     * vMemMap for small groups; cuMemMap + cuMemSetAccess for 2MB.
     */
    TimeNs mapGroupCost(PageGroup pg) const;

    /** Cost of returning one page-group to the pool (unmap path). */
    TimeNs unmapGroupCost(PageGroup pg) const;

    /** Scale all costs (sensitivity studies); 1.0 = Table 3. */
    void setScale(double scale) { scale_ = scale; }
    double scale() const { return scale_; }

  private:
    double scale_ = 1.0;
    CopyModel copy_;
};

} // namespace vattn::cuvmm

#endif // VATTN_CUVMM_LATENCY_MODEL_HH
