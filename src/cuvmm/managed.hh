/**
 * @file
 * Unified-memory (cudaMallocManaged) emulation, reproducing the §8.1
 * discussion of why UVM is NOT suitable for KV cache management even
 * though it provides demand paging:
 *
 *   1. physical pages are committed on first touch at 2MB granularity
 *      (severe internal fragmentation for slowly-growing caches);
 *   2. there is no partial freeing — memory comes back only when the
 *      whole allocation is freed, so one request's pages cannot be
 *      reclaimed while its neighbours are live;
 *   3. no memory aliasing, so KV prefix de-duplication is impossible.
 *
 * The paper's driver extension is "unified memory optimized for LLM
 * serving": it adds partial freeing (vMemRelease per page-group),
 * smaller pages and sharing — all of which the main driver implements.
 */

#ifndef VATTN_CUVMM_MANAGED_HH
#define VATTN_CUVMM_MANAGED_HH

#include <map>
#include <vector>

#include "cuvmm/driver.hh"

namespace vattn::cuvmm
{

/** cudaMallocManaged-style allocator over the simulated device. */
class ManagedMemory
{
  public:
    explicit ManagedMemory(gpu::GpuDevice &device);
    ~ManagedMemory();

    ManagedMemory(const ManagedMemory &) = delete;
    ManagedMemory &operator=(const ManagedMemory &) = delete;

    /** Reserve @p size bytes of managed virtual memory. No physical
     *  memory is committed yet (demand paging). */
    CuResult mallocManaged(Addr *ptr, u64 size);

    /**
     * Touch [addr, addr+size): commits any uncommitted 2MB pages in
     * the range, like a first GPU access would. Returns the number of
     * pages committed by this call.
     */
    Result<int> touch(Addr addr, u64 size);

    /** Free a whole managed allocation. This is the ONLY way memory
     *  returns to the device — no partial freeing (§8.1). */
    CuResult freeManaged(Addr ptr);

    /** Committed physical bytes across all managed allocations. */
    u64 committedBytes() const { return committed_bytes_; }
    /** Committed bytes attributable to one allocation. */
    u64 committedBytes(Addr ptr) const;

    /** The §8.1 limitation, stated as API absence: partial release
     *  always fails. */
    CuResult releaseRange(Addr addr, u64 size);

    static constexpr u64 kManagedPage = 2 * MiB;

  private:
    struct Region
    {
        u64 size = 0;
        /** page index -> physical base of the committed page. */
        std::map<u64, PhysAddr> committed;
    };

    gpu::GpuDevice &device_;
    std::map<Addr, Region> regions_;
    u64 committed_bytes_ = 0;
};

} // namespace vattn::cuvmm

#endif // VATTN_CUVMM_MANAGED_HH
