/**
 * @file
 * The VMM driver facade the vAttention library is written against. The
 * call surface mirrors the CUDA driver API (Table 3 of the paper):
 *
 *   - cuMemAddressReserve / cuMemAddressFree : virtual space only
 *   - cuMemCreate / cuMemRelease             : physical handles (2MB mult.)
 *   - cuMemMap / cuMemSetAccess / cuMemUnmap : (un)mapping + access
 *   - cudaMalloc / cudaFree                  : classic fused allocation
 *
 * plus the paper's open-source driver extension:
 *
 *   - vMemReserve / vMemFree     : same as the cu* versions
 *   - vMemCreate                 : one page-group (64KB..2MB) per handle
 *   - vMemMap                    : map + grant access in one call
 *   - vMemUnmap                  : unmap ONE VA, keep the handle live
 *   - vMemRelease                : unmap (if mapped) + free in one call
 *
 * Aliased-handle semantics (one handle mapped at several VAs — the KV
 * de-duplication capability of §8.1):
 *   - cuMemMap / vMemMap may map a live handle at any number of VAs.
 *   - cuMemUnmap / vMemUnmap remove exactly one mapping; the handle
 *     and its physical memory survive while other mappings (or the
 *     handle itself) remain, so physBytesInUse() is unchanged until
 *     cuMemRelease / vMemRelease destroys the handle.
 *   - vMemRelease on an aliased handle unmaps EVERY remaining VA and
 *     then frees the physical memory exactly once.
 *
 * Every call charges its Table-3 latency to an internal ledger which the
 * caller drains with consumeElapsedNs() and attributes to either the
 * critical path or the background-allocation thread.
 */

#ifndef VATTN_CUVMM_DRIVER_HH
#define VATTN_CUVMM_DRIVER_HH

#include <unordered_map>

#include "common/audit.hh"
#include "common/types.hh"
#include "cuvmm/latency_model.hh"
#include "gpu/device.hh"

namespace vattn::cuvmm
{

/** CUDA-style result codes. */
enum class CuResult
{
    kSuccess = 0,
    kErrorInvalidValue,
    kErrorOutOfMemory,
    kErrorNotMapped,
    kErrorAlreadyMapped,
    kErrorNotReserved,
    kErrorInvalidHandle,
};

const char *toString(CuResult result);

/** Opaque physical-memory handle (CUmemGenericAllocationHandle). */
using MemHandle = u64;
constexpr MemHandle kInvalidHandle = 0;

/** Per-API call counters (tests/benches). */
struct DriverCounters
{
    u64 reserve = 0;
    u64 create = 0;
    u64 map = 0;
    u64 set_access = 0;
    u64 unmap = 0;
    u64 release = 0;
    u64 address_free = 0;
    // Host tier (KV swap).
    u64 host_create = 0;
    u64 host_release = 0;
    u64 copy_dtoh = 0;
    u64 copy_htod = 0;

    u64
    total() const
    {
        return reserve + create + map + set_access + unmap + release +
               address_free + host_create + host_release + copy_dtoh +
               copy_htod;
    }
};

/** Driver instance bound to one GPU device. */
class Driver
{
  public:
    explicit Driver(gpu::GpuDevice &device, LatencyModel latency = {});

    // --- Stock CUDA VMM API (2MB granularity) ----------------------

    CuResult cuMemAddressReserve(Addr *ptr, u64 size, u64 alignment = 0,
                                 Addr fixed = 0);
    CuResult cuMemAddressFree(Addr ptr, u64 size);
    CuResult cuMemCreate(MemHandle *handle, u64 size);
    CuResult cuMemRelease(MemHandle handle);
    CuResult cuMemMap(Addr ptr, u64 size, u64 offset, MemHandle handle);
    CuResult cuMemUnmap(Addr ptr, u64 size);
    CuResult cuMemSetAccess(Addr ptr, u64 size);

    // --- Classic allocation (virtual + physical fused) -------------

    CuResult cudaMalloc(Addr *ptr, u64 size);
    CuResult cudaFree(Addr ptr);

    // --- Host memory + PCIe copies (KV swap tier) -------------------
    //
    // Host handles live in their own namespace: they have no device
    // physical memory and can never be mapped into the GPU VA space,
    // only serve as copy endpoints. Copy latency follows the
    // LatencyModel's CopyModel (a perf::PcieSpec installs the
    // calibrated link) and lands on the same ledger as every other
    // driver call, so callers attribute swap stalls like map latency.

    /** Allocate @p size bytes of pinned host memory. */
    CuResult cuMemHostCreate(MemHandle *handle, u64 size);
    /** Free a pinned host allocation (must exist). */
    CuResult cuMemHostRelease(MemHandle handle);
    /** Copy a device handle's contents to a host handle (sizes must
     *  match; the device handle may be mapped or not). */
    CuResult cuMemcpyDtoH(MemHandle host, MemHandle device);
    /** Copy a host handle's contents back to a device handle. */
    CuResult cuMemcpyHtoD(MemHandle device, MemHandle host);

    // --- Paper's driver extension (§6.2): small page-groups --------

    CuResult vMemReserve(Addr *ptr, u64 size, u64 alignment = 0);
    CuResult vMemFree(Addr ptr, u64 size);
    CuResult vMemCreate(MemHandle *handle, PageGroup group);
    CuResult vMemMap(Addr ptr, MemHandle handle);
    /** Remove the mapping at @p ptr only; the handle stays live (and
     *  possibly mapped at other VAs). Needed by prefix sharing, where
     *  one request's unmap must not free pages aliased by another. */
    CuResult vMemUnmap(Addr ptr);
    CuResult vMemRelease(MemHandle handle);

    // --- Introspection ----------------------------------------------

    gpu::GpuDevice &device() { return device_; }
    const LatencyModel &latency() const { return latency_; }
    LatencyModel &latency() { return latency_; }

    /** Latency accrued since the last call to this function. */
    TimeNs consumeElapsedNs();
    TimeNs totalNs() const { return total_ns_; }
    const DriverCounters &counters() const { return counters_; }

    /** Bytes of physical memory currently owned by live handles. */
    u64 physBytesInUse() const { return phys_in_use_; }
    /** Live (created, not released) handle count. */
    std::size_t numLiveHandles() const { return handles_.size(); }
    /** Bytes of pinned host memory currently allocated. */
    u64 hostBytesInUse() const { return host_in_use_; }
    /** Live pinned host allocations. */
    std::size_t numLiveHostHandles() const
    {
        return host_handles_.size();
    }

    /**
     * Self-audit of the driver's ledgers: physBytesInUse() and
     * hostBytesInUse() must equal the sum of live handle sizes, and
     * the VA->handle map must agree bidirectionally with every
     * handle's mapping list. Records violations in @p report.
     */
    void auditInto(audit::AuditReport &report) const;

    /** Page-group size of a live handle (tests). */
    u64 handleSize(MemHandle handle) const;
    /** Is the handle currently mapped somewhere? */
    bool isMapped(MemHandle handle) const;
    /** Number of VAs the handle is mapped at (>1 = aliased). */
    std::size_t numMappings(MemHandle handle) const;

  private:
    struct HandleInfo
    {
        u64 size = 0;
        PhysAddr phys = 0;
        PageSize page = PageSize::k2MB; ///< hardware page backing it
        /** Every VA this handle is mapped at. More than one entry
         *  means the physical memory is aliased — the KV
         *  de-duplication capability of §8.1. */
        std::vector<Addr> mappings;
        bool is_extension = false;      ///< created via vMemCreate
    };

    struct MallocInfo
    {
        u64 size = 0;
        MemHandle handle = kInvalidHandle;
    };

    void charge(Api api, PageGroup pg);
    /** Charge a cost that is not a Table-3 API (host alloc, copies). */
    void chargeNs(TimeNs cost);

    CuResult doMap(Addr ptr, MemHandle handle, gpu::Access access);
    CuResult doUnmapOne(HandleInfo &info, Addr ptr);

    gpu::GpuDevice &device_;
    LatencyModel latency_;
    std::unordered_map<MemHandle, HandleInfo> handles_;
    std::unordered_map<Addr, MemHandle> mapped_; ///< map VA -> handle
    std::unordered_map<Addr, MallocInfo> mallocs_;
    /** Pinned host allocations: handle -> size. */
    std::unordered_map<MemHandle, u64> host_handles_;
    MemHandle next_handle_ = 1;
    TimeNs pending_ns_ = 0;
    TimeNs total_ns_ = 0;
    u64 phys_in_use_ = 0;
    u64 host_in_use_ = 0;
    DriverCounters counters_;
};

} // namespace vattn::cuvmm

#endif // VATTN_CUVMM_DRIVER_HH
