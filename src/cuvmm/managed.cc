#include "cuvmm/managed.hh"

#include "common/logging.hh"

namespace vattn::cuvmm
{

ManagedMemory::ManagedMemory(gpu::GpuDevice &device)
    : device_(device)
{
}

ManagedMemory::~ManagedMemory()
{
    while (!regions_.empty()) {
        freeManaged(regions_.begin()->first);
    }
}

CuResult
ManagedMemory::mallocManaged(Addr *ptr, u64 size)
{
    if (!ptr || size == 0) {
        return CuResult::kErrorInvalidValue;
    }
    const u64 padded = roundUp(size, kManagedPage);
    auto reservation =
        device_.vaSpace().reserve(padded, kManagedPage);
    if (!reservation.isOk()) {
        return CuResult::kErrorOutOfMemory;
    }
    regions_.emplace(reservation.value(), Region{padded, {}});
    *ptr = reservation.value();
    return CuResult::kSuccess;
}

Result<int>
ManagedMemory::touch(Addr addr, u64 size)
{
    auto it = regions_.upper_bound(addr);
    if (it == regions_.begin()) {
        return Result<int>(ErrorCode::kNotFound, "not managed memory");
    }
    --it;
    const Addr base = it->first;
    Region &region = it->second;
    if (addr + size > base + region.size) {
        return Result<int>(ErrorCode::kInvalidArgument,
                           "touch beyond the allocation");
    }

    int committed = 0;
    const u64 first = (addr - base) / kManagedPage;
    const u64 last = (addr + size - 1 - base) / kManagedPage;
    for (u64 page = first; page <= last; ++page) {
        if (region.committed.count(page)) {
            continue;
        }
        // UVM commits full 2MB pages on first touch — the
        // fragmentation the paper's §6.2 granularity work avoids.
        auto phys = device_.physAllocator().alloc(kManagedPage);
        if (!phys.isOk()) {
            return Result<int>(phys.status());
        }
        device_.pageTable()
            .map(base + page * kManagedPage, phys.value(),
                 kManagedPage, PageSize::k2MB,
                 gpu::Access::kReadWrite)
            .expectOk("managed map");
        region.committed.emplace(page, phys.value());
        committed_bytes_ += kManagedPage;
        ++committed;
    }
    return committed;
}

CuResult
ManagedMemory::freeManaged(Addr ptr)
{
    auto it = regions_.find(ptr);
    if (it == regions_.end()) {
        return CuResult::kErrorInvalidValue;
    }
    Region &region = it->second;
    for (const auto &[page, phys] : region.committed) {
        device_.pageTable()
            .unmap(ptr + page * kManagedPage, kManagedPage)
            .expectOk("managed unmap");
        device_.physAllocator()
            .free(phys, kManagedPage)
            .expectOk("managed phys free");
        committed_bytes_ -= kManagedPage;
    }
    device_.vaSpace().release(ptr).expectOk("managed va release");
    regions_.erase(it);
    return CuResult::kSuccess;
}

u64
ManagedMemory::committedBytes(Addr ptr) const
{
    auto it = regions_.find(ptr);
    if (it == regions_.end()) {
        return 0;
    }
    return it->second.committed.size() * kManagedPage;
}

CuResult
ManagedMemory::releaseRange(Addr addr, u64 size)
{
    (void)addr;
    (void)size;
    // cudaMallocManaged memory "does not support partial freeing,
    // preventing reclamation of physical memory of individual
    // requests" (§8.1). The call exists so callers can observe the
    // limitation programmatically.
    return CuResult::kErrorInvalidValue;
}

} // namespace vattn::cuvmm
